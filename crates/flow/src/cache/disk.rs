//! Persistent, crash-safe, content-addressed entry store.
//!
//! A [`DiskCache`] holds one file per controller shape under a cache
//! directory, named by the shape's [`CacheKey::digest`] hex (sixteen
//! lowercase hex digits). Each file is:
//!
//! ```text
//! +----------+---------+----------+-------------+-------------+----------+-----------------+
//! | magic    | version | run_id   | produced_ns | payload_len | checksum | payload         |
//! | 8 bytes  | u32 le  | u64 le   | u64 le      | u64 le      | u64 le   | codec::encode_* |
//! +----------+---------+----------+-------------+-------------+----------+-----------------+
//! ```
//!
//! with `checksum = fnv64(payload)` and the payload the deterministic
//! binary encoding of the full [`CacheKey`] plus the [`SynthArtifact`]
//! (see `codec.rs`). Storing the *full* key in the payload — not just the
//! 64-bit digest that names the file — lets a load verify that the entry
//! really is the shape it asked for, so a digest collision degrades to a
//! miss instead of serving a wrong artifact.
//!
//! `run_id`/`produced_ns` are producer **provenance** (format v2): the
//! [`bmbe_obs::run_id`] of the process that synthesized the entry and the
//! wall-clock instant it was written. They live in the *file header*, not
//! the codec payload, so the payload bytes stay a pure function of the
//! `(key, artifact)` pair — the bit-identical determinism tests compare
//! payloads across cold/warm/disk paths. A warm fleet process can thus
//! answer "who produced the entry I just hit" ([`DiskCache::provenance`],
//! surfaced as the `cache.disk.producer_run` trace event), correlating its
//! trace with the cold producer's.
//!
//! Durability rules:
//!
//! - **Writes are atomic.** An entry is encoded into a process-unique
//!   `.tmp` file in the cache directory and `rename(2)`d into place, so a
//!   concurrent reader (or a second writer racing the same digest) sees
//!   either no entry or a complete one — never a torn write. Two racing
//!   writers both succeed; last rename wins, and both wrote identical
//!   bytes anyway because the codec is deterministic.
//! - **Bad entries are evicted, not served.** A wrong magic, an unknown
//!   format version, a short file, a checksum mismatch, a payload that
//!   fails to decode, or a key mismatch all cause the entry file to be
//!   deleted and the load to report a miss; the shape is simply
//!   re-synthesized and re-stored. This mirrors the in-memory cache's
//!   poison-recovery policy: never serve state of unknown integrity.
//! - **I/O failures degrade.** A failed read is a miss, a failed write
//!   leaves the cache without the entry — synthesis results are never
//!   lost, only the warm-start is. The `cache_io` fault phase
//!   (`BMBE_FAULT=cache_io:<n>[:err]`, where `<n>` counts disk operations
//!   on the handle) injects exactly these failures for the tests.

use super::codec::{decode_entry, encode_entry, fnv64};
use super::{CacheKey, SynthArtifact};
use crate::fault::{FaultKind, FaultPhase, FaultPlan};
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// First eight bytes of every entry file.
pub const MAGIC: [u8; 8] = *b"BMBECACH";

/// Current on-disk format version. Bump on any header or payload layout
/// change; entries with any other version are evicted on load (v1 entries
/// from older builds self-heal by re-synthesis). v2 added producer
/// provenance (`run_id`, `produced_ns`) to the header.
pub const FORMAT_VERSION: u32 = 2;

/// Environment variable naming the cache directory the report binaries
/// (and [`super::ControllerCache::from_env`]) open.
pub const CACHE_DIR_ENV: &str = "BMBE_CACHE_DIR";

const HEADER_LEN: usize = 8 + 4 + 8 + 8 + 8 + 8;

/// Producer provenance stamped into every entry's header: which run wrote
/// it, and when (wall clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Provenance {
    /// [`bmbe_obs::run_id`] of the producing process.
    pub run: u64,
    /// Wall-clock nanoseconds since the Unix epoch at store time.
    pub produced_ns: u64,
}

/// Why a load did not return an artifact — used by the durability tests
/// to distinguish a clean miss from an evicted corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskMiss {
    /// No entry file for the digest.
    Absent,
    /// The entry existed but failed validation and was evicted.
    Evicted,
    /// Reading the entry failed at the I/O layer (entry left in place).
    ReadError,
}

/// A persistent entry store under one cache directory. Cheap to open;
/// every operation re-touches the filesystem, so two processes sharing a
/// directory see each other's completed writes immediately.
#[derive(Debug)]
pub struct DiskCache {
    dir: PathBuf,
    fault: Option<FaultPlan>,
    ops: AtomicUsize,
}

/// Process-wide temp-file sequence: two handles over the same directory in
/// one process (two batch fleets, a test's writer race) must never pick
/// the same temp name — the pid in the name only separates *processes*.
static TMP_SEQ: AtomicUsize = AtomicUsize::new(0);

impl DiskCache {
    /// Opens (creating if needed) a cache directory. Picks up a `cache_io`
    /// [`FaultPlan`] from `BMBE_FAULT` so the report binaries inject disk
    /// faults with the same grammar as every other phase.
    ///
    /// # Errors
    ///
    /// Fails only if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<DiskCache> {
        Self::with_fault(dir, FaultPlan::from_env())
    }

    /// [`DiskCache::open`] with an explicit fault plan (tests). Plans for
    /// phases other than `cache_io` are ignored.
    ///
    /// # Errors
    ///
    /// Fails only if the directory cannot be created.
    pub fn with_fault(
        dir: impl Into<PathBuf>,
        fault: Option<FaultPlan>,
    ) -> io::Result<DiskCache> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let cache = DiskCache {
            dir,
            fault: fault.filter(|plan| plan.phase == FaultPhase::CacheIo),
            ops: AtomicUsize::new(0),
        };
        // Recompute the size gauge from what is already on disk, not just
        // after writes — a warm process that never stores anything must
        // still report the true cache size.
        bmbe_obs::trace_gauge!("cache.disk.dir_bytes", cache.dir_bytes() as i64);
        Ok(cache)
    }

    /// Opens the directory named by `BMBE_CACHE_DIR`, if set and non-empty.
    /// An unusable directory is reported and ignored (a broken cache must
    /// never break the synthesis it accelerates).
    pub fn from_env() -> Option<DiskCache> {
        let dir = std::env::var(CACHE_DIR_ENV).ok()?;
        let dir = dir.trim();
        if dir.is_empty() {
            return None;
        }
        match DiskCache::open(dir) {
            Ok(cache) => Some(cache),
            Err(e) => {
                bmbe_obs::vlog!(0, "bmbe-flow: ignoring {CACHE_DIR_ENV}={dir}: {e}");
                None
            }
        }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The entry file path for a key.
    pub fn entry_path(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(format!("{:016x}", key.digest()))
    }

    /// Counts one disk operation and fires the armed `cache_io` fault if
    /// this is the targeted one. Reads and writes share the counter.
    fn io_op(&self) -> io::Result<()> {
        let index = self.ops.fetch_add(1, Ordering::Relaxed);
        if let Some(plan) = &self.fault {
            if plan.targets_job(index) {
                match plan.kind {
                    FaultKind::Panic => panic!(
                        "injected fault: panic at phase cache_io of op {index}"
                    ),
                    FaultKind::Error => {
                        return Err(io::Error::other(format!(
                            "injected fault at cache_io op {index}"
                        )))
                    }
                }
            }
        }
        Ok(())
    }

    /// Loads the entry for `key`, or explains the miss. Corrupt entries
    /// (bad magic/version/length/checksum, undecodable payload, key
    /// mismatch) are deleted; I/O errors leave the file alone.
    pub fn load(&self, key: &CacheKey) -> Result<Arc<SynthArtifact>, DiskMiss> {
        let path = self.entry_path(key);
        let bytes = match self.read_entry(&path) {
            Ok(Some(bytes)) => bytes,
            Ok(None) => {
                bmbe_obs::trace_counter!("cache.disk.misses", 1);
                return Err(DiskMiss::Absent);
            }
            Err(e) => {
                bmbe_obs::trace_counter!("cache.disk.read_errors", 1);
                bmbe_obs::vlog!(1, "bmbe-flow: disk cache read failed ({}): {e}", path.display());
                return Err(DiskMiss::ReadError);
            }
        };
        match validate(&bytes).and_then(|(payload, provenance)| {
            decode_entry(payload)
                .map(|entry| (entry, provenance))
                .map_err(|e| format!("payload: {e}"))
        }) {
            Ok(((stored_key, artifact), provenance)) if stored_key == *key => {
                bmbe_obs::trace_counter!("cache.disk.hits", 1);
                bmbe_obs::trace_counter!("cache.disk.bytes_read", bytes.len() as u64);
                // Correlate this hit with the run that produced the entry
                // (the cold fleet process, usually a different trace).
                bmbe_obs::event!("cache.disk.producer_run", provenance.run as i64);
                Ok(Arc::new(artifact))
            }
            Ok(_) => self.evict(&path, "digest collision: stored key differs"),
            Err(why) => self.evict(&path, &why),
        }
    }

    /// Reads only the provenance header of the entry for `key` (`None` on
    /// a missing, short, or foreign-format entry).
    pub fn provenance(&self, key: &CacheKey) -> Option<Provenance> {
        let bytes = self.read_entry(&self.entry_path(key)).ok().flatten()?;
        let (_, provenance) = validate(&bytes).ok()?;
        Some(provenance)
    }

    fn read_entry(&self, path: &Path) -> io::Result<Option<Vec<u8>>> {
        self.io_op()?;
        let mut file = match fs::File::open(path) {
            Ok(file) => file,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        Ok(Some(bytes))
    }

    fn evict(&self, path: &Path, why: &str) -> Result<Arc<SynthArtifact>, DiskMiss> {
        // Best-effort delete: the entry is bad whether or not the unlink
        // succeeds, and a racing writer may already have replaced it.
        let _ = fs::remove_file(path);
        bmbe_obs::trace_counter!("cache.disk.evicted", 1);
        bmbe_obs::vlog!(
            1,
            "bmbe-flow: evicted corrupt cache entry {} ({why})",
            path.display()
        );
        // An eviction is a durability incident: drain the flight recorder
        // so the corrupt entry's story survives (to a file, never stdout;
        // skipped when no dump sink is configured — see bmbe_obs::recorder).
        bmbe_obs::recorder::note("cache.disk.evicted", || {
            format!("{} ({why})", path.display())
        });
        bmbe_obs::recorder::dump(
            "disk-evict",
            &[
                ("entry", path.display().to_string()),
                ("why", why.to_string()),
            ],
        );
        Err(DiskMiss::Evicted)
    }

    /// Writes the entry for `key` atomically (temp file + rename) and
    /// returns the entry size in bytes.
    ///
    /// # Errors
    ///
    /// Any I/O failure (including an injected `cache_io` fault); the
    /// caller degrades to an unpersisted artifact.
    pub fn store(&self, key: &CacheKey, artifact: &SynthArtifact) -> io::Result<u64> {
        self.io_op()?;
        let payload = encode_entry(key, artifact);
        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&bmbe_obs::run_id().to_le_bytes());
        bytes.extend_from_slice(&bmbe_obs::wall_ns().to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&fnv64(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);

        // Unique-per-(process, call) temp name so concurrent writers —
        // whether separate processes or separate handles in one process —
        // never share a temp file; the rename is what publishes.
        let tmp = self.dir.join(format!(
            ".{:016x}.{}.{}.tmp",
            key.digest(),
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        let result = (|| {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_all()?;
            fs::rename(&tmp, self.entry_path(key))
        })();
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
            bmbe_obs::trace_counter!("cache.disk.write_errors", 1);
        } else {
            bmbe_obs::trace_counter!("cache.disk.bytes_written", bytes.len() as u64);
            bmbe_obs::trace_gauge!("cache.disk.dir_bytes", self.dir_bytes() as i64);
        }
        result.map(|()| bytes.len() as u64)
    }

    /// Number of committed entries in the directory (temp files excluded).
    pub fn len(&self) -> usize {
        self.entries().count()
    }

    /// Whether the directory holds no committed entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total size in bytes of the committed entries.
    pub fn dir_bytes(&self) -> u64 {
        self.entries()
            .filter_map(|p| fs::metadata(p).ok())
            .map(|m| m.len())
            .sum()
    }

    fn entries(&self) -> impl Iterator<Item = PathBuf> {
        fs::read_dir(&self.dir)
            .into_iter()
            .flatten()
            .flatten()
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.len() == 16 && n.bytes().all(|b| b.is_ascii_hexdigit()))
            })
    }
}

/// Checks the header and returns the payload slice plus the producer
/// provenance.
fn validate(bytes: &[u8]) -> Result<(&[u8], Provenance), String> {
    if bytes.len() < HEADER_LEN {
        return Err(format!("short entry: {} bytes", bytes.len()));
    }
    let (header, payload) = bytes.split_at(HEADER_LEN);
    if header[..8] != MAGIC {
        return Err("bad magic".to_string());
    }
    let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(format!(
            "format version {version} (this build reads {FORMAT_VERSION})"
        ));
    }
    let provenance = Provenance {
        run: u64::from_le_bytes(header[12..20].try_into().expect("8 bytes")),
        produced_ns: u64::from_le_bytes(header[20..28].try_into().expect("8 bytes")),
    };
    let payload_len = u64::from_le_bytes(header[28..36].try_into().expect("8 bytes"));
    if payload_len != payload.len() as u64 {
        return Err(format!(
            "truncated: header claims {payload_len} payload bytes, file has {}",
            payload.len()
        ));
    }
    let checksum = u64::from_le_bytes(header[36..44].try_into().expect("8 bytes"));
    let actual = fnv64(payload);
    if checksum != actual {
        return Err(format!(
            "checksum mismatch: header {checksum:#018x}, payload {actual:#018x}"
        ));
    }
    Ok((payload, provenance))
}
