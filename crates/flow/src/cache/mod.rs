//! Content-addressed controller cache.
//!
//! Real designs instantiate the same handful of control-component shapes
//! (sequencers, calls, decision-waits, …) dozens of times, and the
//! expensive part of the back-end — exact hazard-free minimization is
//! worst-case exponential — depends only on the component's *structure*,
//! not on its channel names. The cache therefore addresses artifacts by a
//! canonical structural key: the printed form of the alpha-renamed CH
//! program ([`bmbe_core::ast::alpha_rename`]) plus the synthesis-relevant
//! options ([`MinimizeMode`], [`MapObjective`], [`MapStyle`]). Each unique
//! shape is compiled, state-minimized, synthesized, technology-mapped, and
//! verified exactly once; every further instance re-materializes the cached
//! artifact by renaming its canonical wires (`k0_r`, `k1_a`, …) back to the
//! instance's actual channel names.
//!
//! The cache is thread-safe (a mutexed map probed before and after the
//! parallel fan-out) and can be shared across flow runs: the bench drivers
//! reuse one cache across all four benchmark designs and across the
//! unoptimized/optimized sides of a comparison.
//!
//! It is also *poison-tolerant*: a worker that panics while holding the
//! entry lock must not take every later flow run down with a
//! poisoned-mutex panic. Locking recovers from poisoning via
//! [`PoisonError::into_inner`], and a write-generation guard evicts any
//! entry a crashed store left half-written — the shape is simply re-missed
//! (retried) on the next lookup instead of being served in an unknown
//! state. Entries written by stores that completed are kept.
//!
//! Since PR 8 the cache can also be *persistent*: layering a
//! [`DiskCache`] (see [`disk`]) under the in-memory map turns every
//! lookup into memory → disk → synthesize, and every store into a
//! write-through. Disk hits are promoted into the memory map; disk
//! failures of any kind (I/O errors, corrupt entries, even a panicking
//! filesystem) degrade to an ordinary miss, so `synthesize_*` callers
//! are untouched whether or not a cache directory is configured.

pub mod codec;
pub mod disk;

pub use disk::{DiskCache, DiskMiss, Provenance, CACHE_DIR_ENV};

use crate::fault::{FaultKind, FaultPhase, FaultPlan};
use crate::profile::PhaseProfile;
use bmbe_bm::statemin::minimize_states;
use bmbe_bm::synth::{synthesize_full, Controller, MinimizeMode, SynthError};
use bmbe_logic::hfmin::{HfminError, MinimizeBackend, MinimizeOptions, PrimeGenFault};
use bmbe_core::ast::{alpha_rename, ChExpr};
use bmbe_core::compile::{compile_to_bm, CompileError};
use bmbe_core::parse::print_ch;
use bmbe_gates::{map as techmap, Library, MapObjective, MapStyle, MappedNetlist, SubjectGraph};
use bmbe_logic::Cover;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// The content address of a controller shape: canonical program text plus
/// the options that change what synthesis produces.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Printed alpha-renamed CH program (or the literal program text for
    /// verb programs, which cannot be renamed).
    pub canonical: String,
    /// Minimization mode.
    pub minimize_mode: MinimizeMode,
    /// Minimizer backend (the covers differ between backends, so the
    /// backend must be part of the content address).
    pub minimize_backend: MinimizeBackend,
    /// Technology-mapping objective.
    pub map_objective: MapObjective,
    /// Technology-mapping style.
    pub map_style: MapStyle,
}

impl CacheKey {
    /// A short content digest of the key (FNV-1a over the canonical text
    /// and the option fields), used to *name* the key in error reports and
    /// logs without dumping the whole canonical program.
    pub fn digest(&self) -> u64 {
        fn eat(mut h: u64, bytes: &[u8]) -> u64 {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            h
        }
        let h = eat(0xcbf2_9ce4_8422_2325, self.canonical.as_bytes());
        eat(
            h,
            format!(
                "|{:?}|{:?}|{:?}|{:?}",
                self.minimize_mode, self.minimize_backend, self.map_objective, self.map_style
            )
            .as_bytes(),
        )
    }
}

/// A component program keyed for the cache: the content address, the
/// canonical program a miss must synthesize, and the channel-name table for
/// re-instantiating the canonical artifact under the component's names.
#[derive(Debug, Clone)]
pub struct KeyedProgram {
    /// The content address.
    pub key: CacheKey,
    /// The alpha-renamed program (the program itself for verb programs).
    pub canonical: ChExpr,
    /// Actual channel names in canonical order: wire `k{i}_s` of the
    /// canonical artifact is wire `{names[i]}_s` of the instance. Empty
    /// when the program could not be renamed (identity mapping).
    pub names: Vec<String>,
}

impl KeyedProgram {
    /// Keys a component program under the given synthesis options.
    pub fn new(
        program: &ChExpr,
        minimize_mode: MinimizeMode,
        minimize_backend: MinimizeBackend,
        map_objective: MapObjective,
        map_style: MapStyle,
    ) -> Self {
        let (canonical, names) = match alpha_rename(program) {
            Some((canonical, names)) => (canonical, names),
            None => (program.clone(), Vec::new()),
        };
        KeyedProgram {
            key: CacheKey {
                canonical: print_ch(&canonical),
                minimize_mode,
                minimize_backend,
                map_objective,
                map_style,
            },
            canonical,
            names,
        }
    }

    /// Maps a canonical wire name (`k{i}_suffix`) back to the instance's
    /// actual wire name (`{names[i]}_suffix`). Non-canonical names (state
    /// bits `y{j}`, or anything when the mapping is empty) pass through.
    pub fn rename_wire(&self, wire: &str) -> String {
        if self.names.is_empty() {
            return wire.to_string();
        }
        if let Some((prefix, suffix)) = wire.rsplit_once('_') {
            if let Some(index) = prefix
                .strip_prefix('k')
                .and_then(|d| d.parse::<usize>().ok())
            {
                if let Some(actual) = self.names.get(index) {
                    return format!("{actual}_{suffix}");
                }
            }
        }
        wire.to_string()
    }
}

/// A stage failure for one controller shape. Unlike
/// [`crate::pipeline::FlowError`] it carries no component name: the same
/// shape error applies to every instance of the shape.
#[derive(Debug)]
pub enum ShapeError {
    /// CH-to-BMS compilation (or state minimization) failed.
    Compile(CompileError),
    /// Controller synthesis failed.
    Synth(SynthError),
    /// Ternary hazard verification failed.
    Hazard(String),
    /// Post-mapping verification failed.
    MappedHazard(String),
    /// The synthesis job panicked; the worker caught the unwind and the
    /// payload is the stringified panic message. Siblings of a panicked
    /// job complete normally.
    Panic(String),
    /// A [`FaultPlan`] injected a typed error at the given phase (the
    /// testable non-unwinding failure path).
    Injected(FaultPhase),
}

impl ShapeError {
    /// The per-shape phase this error belongs to (`"panic"` for a caught
    /// panic, whose phase is only known from its payload text).
    pub fn phase(&self) -> &'static str {
        match self {
            ShapeError::Compile(_) => "compile",
            ShapeError::Synth(_) => "synth",
            ShapeError::Hazard(_) => "verify",
            ShapeError::MappedHazard(_) => "map",
            ShapeError::Panic(_) => "panic",
            ShapeError::Injected(phase) => phase.name(),
        }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeError::Compile(e) => write!(f, "{e}"),
            ShapeError::Synth(e) => write!(f, "{e}"),
            ShapeError::Hazard(detail) => write!(f, "hazard: {detail}"),
            ShapeError::MappedHazard(detail) => write!(f, "mapped hazard: {detail}"),
            ShapeError::Panic(payload) => write!(f, "panicked: {payload}"),
            ShapeError::Injected(phase) => write!(f, "injected fault at phase {phase}"),
        }
    }
}

impl std::error::Error for ShapeError {}

/// The cached product of the per-shape synthesis chain.
#[derive(Debug)]
pub struct SynthArtifact {
    /// Burst-Mode specification states (after state minimization).
    pub bm_states: usize,
    /// The synthesized two-level controller (canonical wire names).
    pub controller: Controller,
    /// The technology-mapped netlist (canonical root names).
    pub mapped: MappedNetlist,
    /// Wall-clock breakdown of the chain that produced this artifact.
    pub profile: PhaseProfile,
}

/// Runs the full per-shape chain: CH-to-BMS compile, state minimization,
/// hazard-free synthesis (its per-function minimizations fanned across up
/// to `threads` workers), ternary verification, technology mapping, and
/// post-mapping verification.
///
/// Each phase runs inside a `bmbe_obs` span (`shape.compile`,
/// `shape.statemin`, `shape.synth`, `shape.verify`, `shape.map`), and the
/// artifact's [`PhaseProfile`] is *generated from those spans* by a
/// [`bmbe_obs::with_span_observer`] subscriber — the profile and the
/// exported trace are the same measurement, whether or not tracing is
/// enabled.
///
/// # Errors
///
/// Returns the first failing stage.
#[allow(clippy::too_many_arguments)]
pub fn synthesize_shape(
    spec_name: &str,
    program: &ChExpr,
    minimize_mode: MinimizeMode,
    minimize_backend: MinimizeBackend,
    map_objective: MapObjective,
    map_style: MapStyle,
    library: &Library,
    threads: usize,
) -> Result<SynthArtifact, ShapeError> {
    synthesize_shape_with_fault(
        spec_name,
        program,
        minimize_mode,
        minimize_backend,
        map_objective,
        map_style,
        library,
        threads,
        None,
    )
}

/// [`synthesize_shape`] with an optional armed [`FaultPlan`]: when given,
/// the plan fires at the start of its targeted phase — a panic or a typed
/// [`ShapeError::Injected`] — so the flow's recovery paths can be driven
/// deterministically. The caller passes `Some` only for the one fan-out
/// job the plan targets.
///
/// # Errors
///
/// Returns the first failing stage (including an injected one).
#[allow(clippy::too_many_arguments)]
pub fn synthesize_shape_with_fault(
    spec_name: &str,
    program: &ChExpr,
    minimize_mode: MinimizeMode,
    minimize_backend: MinimizeBackend,
    map_objective: MapObjective,
    map_style: MapStyle,
    library: &Library,
    threads: usize,
    fault: Option<&FaultPlan>,
) -> Result<SynthArtifact, ShapeError> {
    let trip = |phase: FaultPhase| -> Result<(), ShapeError> {
        match fault {
            Some(plan) => plan.trip(phase).map_err(ShapeError::Injected),
            None => Ok(()),
        }
    };
    // A prime_gen-phase plan fires *inside* the logic crate's minimizer
    // (so it exercises the backend and partitioner code paths), carried
    // there via MinimizeOptions rather than tripped here.
    let prime_fault = fault.and_then(|plan| {
        (plan.phase == FaultPhase::PrimeGen).then(|| match plan.kind {
            FaultKind::Panic => PrimeGenFault::Panic,
            FaultKind::Error => PrimeGenFault::Error,
        })
    });
    let profile = Rc::new(RefCell::new(PhaseProfile {
        shapes: 1,
        ..PhaseProfile::default()
    }));
    let sink = profile.clone();
    let result = bmbe_obs::with_span_observer(
        move |name, _cat, dur| {
            let mut p = sink.borrow_mut();
            match name {
                "shape.compile" => p.compile += dur,
                "shape.statemin" => p.statemin += dur,
                "shape.synth" => p.synth += dur,
                "shape.verify" => p.verify += dur,
                "shape.map" => p.map += dur,
                _ => {}
            }
        },
        || {
            let spec = {
                let _s = bmbe_obs::span!("shape.compile", "flow");
                trip(FaultPhase::Compile)?;
                compile_to_bm(spec_name, program).map_err(ShapeError::Compile)?
            };
            let spec = {
                let _s = bmbe_obs::span!("shape.statemin", "flow");
                trip(FaultPhase::Statemin)?;
                minimize_states(&spec)
                    .map(|r| r.spec)
                    .map_err(|e| ShapeError::Compile(CompileError::Bm(e)))?
            };
            let controller = {
                let _s = bmbe_obs::span!("shape.synth", "flow");
                trip(FaultPhase::Synth)?;
                let opts = MinimizeOptions {
                    backend: minimize_backend,
                    threads: 1, // overridden per function by intra_budget
                    fault: prime_fault,
                };
                synthesize_full(&spec, minimize_mode, threads, &opts).map_err(|e| match e {
                    SynthError::Hfmin {
                        error: HfminError::Injected,
                        ..
                    } => ShapeError::Injected(FaultPhase::PrimeGen),
                    other => ShapeError::Synth(other),
                })?
            };
            {
                let _s = bmbe_obs::span!("shape.verify", "flow");
                trip(FaultPhase::Verify)?;
                controller.verify_ternary().map_err(ShapeError::Hazard)?;
            }
            let mapped = {
                let _s = bmbe_obs::span!("shape.map", "flow");
                trip(FaultPhase::Map)?;
                let functions: Vec<(String, &Cover)> = controller
                    .outputs
                    .iter()
                    .cloned()
                    .chain((0..controller.num_state_bits).map(|j| format!("y{j}")))
                    .zip(
                        controller
                            .output_covers
                            .iter()
                            .chain(controller.next_state_covers.iter()),
                    )
                    .collect();
                let subject = match minimize_mode {
                    MinimizeMode::Speed => {
                        SubjectGraph::from_covers(controller.num_vars(), &functions)
                    }
                    MinimizeMode::Area => {
                        SubjectGraph::from_covers_shared(controller.num_vars(), &functions)
                    }
                };
                techmap(&subject, library, map_objective, map_style)
            };
            {
                let _s = bmbe_obs::span!("shape.verify", "flow");
                if let Some(v) = bmbe_gates::verify_mapped(&controller, &mapped).first() {
                    return Err(ShapeError::MappedHazard(v.to_string()));
                }
            }
            Ok((spec.num_states(), controller, mapped))
        },
    );
    let (bm_states, controller, mapped) = result?;
    let mut profile = Rc::try_unwrap(profile)
        .expect("span observer released at scope exit")
        .into_inner();
    profile.prime_gen = controller.minimize_stats.prime_gen;
    profile.covering = controller.minimize_stats.covering;
    profile.debug_check_subphases(threads);
    Ok(SynthArtifact {
        bm_states,
        controller,
        mapped,
        profile,
    })
}

/// Approximate in-memory footprint of a stored artifact plus its key text:
/// the canonical program text, the controller's covers, and the mapped
/// gates. An observability estimate (the `cache.bytes` counter), not an
/// allocator measurement.
fn approx_artifact_bytes(key: &CacheKey, artifact: &SynthArtifact) -> usize {
    use std::mem::size_of;
    let cover_bytes: usize = artifact
        .controller
        .output_covers
        .iter()
        .chain(artifact.controller.next_state_covers.iter())
        .map(|c| size_of::<Cover>() + std::mem::size_of_val(c.cubes()))
        .sum();
    let gate_bytes: usize = artifact
        .mapped
        .gates
        .iter()
        .map(|g| std::mem::size_of_val(g) + g.inputs.len() * size_of::<usize>())
        .sum();
    key.canonical.len() + size_of::<SynthArtifact>() + cover_bytes + gate_bytes
}

/// Lifetime hit/miss counters of a [`ControllerCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from an existing entry (including entries created
    /// earlier in the same flow run by a structurally identical component).
    pub hits: usize,
    /// Unique shapes synthesized.
    pub misses: usize,
}

/// One stored artifact plus the write generation that produced it (see
/// [`Shelf`]).
#[derive(Debug)]
struct Entry {
    artifact: Arc<SynthArtifact>,
    generation: u64,
}

/// The guarded entry map. `write_generation` is bumped as a store begins,
/// `clean_generation` advanced to match as it completes; an entry whose
/// generation is above `clean_generation` at poison-recovery time was
/// half-written by a store that panicked and is evicted rather than
/// served.
#[derive(Debug, Default)]
struct Shelf {
    map: HashMap<CacheKey, Entry>,
    write_generation: u64,
    clean_generation: u64,
}

/// A thread-safe, content-addressed store of synthesized controller
/// shapes, optionally backed by a persistent [`DiskCache`].
/// Poison-tolerant: see the module docs and [`CacheStats`].
#[derive(Debug, Default)]
pub struct ControllerCache {
    entries: Mutex<Shelf>,
    disk: Option<DiskCache>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    poison_recoveries: AtomicUsize,
}

impl ControllerCache {
    /// An empty, memory-only cache (the default for library callers and
    /// tests — nothing touches the filesystem).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache layered over a persistent store: lookups read
    /// through to disk, stores write through, disk failures degrade to
    /// misses.
    pub fn with_disk(disk: DiskCache) -> Self {
        ControllerCache {
            disk: Some(disk),
            ..Self::default()
        }
    }

    /// A cache honouring `BMBE_CACHE_DIR`: disk-backed when the variable
    /// names a usable directory, memory-only otherwise. The report
    /// binaries and the batch driver use this.
    pub fn from_env() -> Self {
        match DiskCache::from_env() {
            Some(disk) => Self::with_disk(disk),
            None => Self::new(),
        }
    }

    /// The persistent layer, when configured.
    pub fn disk(&self) -> Option<&DiskCache> {
        self.disk.as_ref()
    }

    /// Locks the entry map, recovering from a poisoned mutex instead of
    /// propagating the panic to every future user of a shared cache. On
    /// recovery, entries above the last clean write generation (the
    /// half-written residue of whichever store panicked) are evicted so
    /// the next lookup re-misses and re-synthesizes them; completed
    /// entries survive untouched.
    fn shelf(&self) -> MutexGuard<'_, Shelf> {
        match self.entries.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.entries.clear_poison();
                let mut guard = poisoned.into_inner();
                let clean = guard.clean_generation;
                let before = guard.map.len();
                guard.map.retain(|_, e| e.generation <= clean);
                let evicted = before - guard.map.len();
                guard.write_generation = clean;
                self.poison_recoveries.fetch_add(1, Ordering::Relaxed);
                bmbe_obs::trace_counter!("cache.poison_recovered", 1);
                bmbe_obs::vlog!(
                    1,
                    "bmbe-flow: controller cache recovered from a poisoned lock \
                     ({evicted} half-written entr{} evicted, {} clean entries kept)",
                    if evicted == 1 { "y" } else { "ies" },
                    guard.map.len()
                );
                guard
            }
        }
    }

    /// Number of distinct shapes stored.
    pub fn len(&self) -> usize {
        self.shelf().map.len()
    }

    /// Whether the cache holds no shapes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit/miss counters (accumulated across every run sharing
    /// this cache).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// How many times the entry lock was found poisoned and recovered
    /// (each recovery evicts whatever the interrupted store half-wrote).
    pub fn poison_recoveries(&self) -> usize {
        self.poison_recoveries.load(Ordering::Relaxed)
    }

    /// Looks up a shape without touching the counters: the in-memory map
    /// first, then the persistent layer (a disk hit is promoted into
    /// memory so later lookups are free). Any disk-layer failure —
    /// corrupt entry, I/O error, panic — degrades to `None`.
    pub fn peek(&self, key: &CacheKey) -> Option<Arc<SynthArtifact>> {
        if let Some(artifact) = self.shelf().map.get(key).map(|e| e.artifact.clone()) {
            return Some(artifact);
        }
        let disk = self.disk.as_ref()?;
        // The disk layer handles its own typed failures; catch_job adds
        // panic isolation on top (an injected cache_io panic, or a truly
        // broken filesystem, must read as a miss — never take down the
        // flow or poison the entry lock).
        let artifact = match bmbe_par::catch_job(|| disk.load(key).ok()) {
            Ok(loaded) => loaded?,
            Err(payload) => {
                bmbe_obs::vlog!(1, "bmbe-flow: disk cache read panicked: {payload}");
                return None;
            }
        };
        self.store_in_memory(key.clone(), artifact.clone());
        Some(artifact)
    }

    /// Stores a shape in memory and, when a persistent layer is
    /// configured, writes it through to disk. A failed or panicking disk
    /// write degrades to an unpersisted entry (the flow still has the
    /// artifact; only the warm-start is lost).
    pub fn store(&self, key: CacheKey, artifact: Arc<SynthArtifact>) {
        if let Some(disk) = &self.disk {
            match bmbe_par::catch_job(|| disk.store(&key, &artifact)) {
                Ok(Ok(_)) => {}
                Ok(Err(e)) => {
                    bmbe_obs::vlog!(1, "bmbe-flow: disk cache write failed (degrading): {e}");
                }
                Err(payload) => {
                    bmbe_obs::vlog!(1, "bmbe-flow: disk cache write panicked: {payload}");
                }
            }
        }
        self.store_in_memory(key, artifact);
    }

    /// The in-memory half of a store (also used to promote disk hits,
    /// which must not be written back out).
    fn store_in_memory(&self, key: CacheKey, artifact: Arc<SynthArtifact>) {
        bmbe_obs::trace_counter!("cache.bytes", approx_artifact_bytes(&key, &artifact) as u64);
        let mut shelf = self.shelf();
        shelf.write_generation += 1;
        let generation = shelf.write_generation;
        shelf.map.insert(
            key,
            Entry {
                artifact,
                generation,
            },
        );
        // Reaching here means the insert completed; mark the generation
        // clean so a later poison recovery keeps this entry.
        shelf.clean_generation = shelf.write_generation;
    }

    /// Adds to the lifetime counters (one flow run's totals at a time).
    pub fn record(&self, hits: usize, misses: usize) {
        if hits > 0 {
            bmbe_obs::trace_counter!("cache.hits", hits as u64);
        }
        if misses > 0 {
            bmbe_obs::trace_counter!("cache.misses", misses as u64);
        }
        self.hits.fetch_add(hits, Ordering::Relaxed);
        self.misses.fetch_add(misses, Ordering::Relaxed);
    }

    /// Serial convenience used by the ablation drivers: key the program,
    /// return the cached artifact or synthesize-and-store it, together with
    /// the name table for re-instantiation.
    ///
    /// # Errors
    ///
    /// Returns the first failing stage of a miss's synthesis chain.
    pub fn get_or_synthesize(
        &self,
        program: &ChExpr,
        minimize_mode: MinimizeMode,
        map_objective: MapObjective,
        map_style: MapStyle,
        library: &Library,
    ) -> Result<(Arc<SynthArtifact>, KeyedProgram), ShapeError> {
        let backend = MinimizeBackend::default();
        let keyed = KeyedProgram::new(program, minimize_mode, backend, map_objective, map_style);
        if let Some(entry) = self.peek(&keyed.key) {
            self.record(1, 0);
            return Ok((entry, keyed));
        }
        let artifact = Arc::new(synthesize_shape(
            "shape",
            &keyed.canonical,
            minimize_mode,
            backend,
            map_objective,
            map_style,
            library,
            1,
        )?);
        self.store(keyed.key.clone(), artifact.clone());
        self.record(0, 1);
        Ok((artifact, keyed))
    }
}

#[cfg(test)]
mod cache_tests {
    use super::*;
    use bmbe_core::components::sequencer;
    use std::panic::AssertUnwindSafe;

    fn artifact_for(program: &ChExpr) -> (CacheKey, Arc<SynthArtifact>) {
        let keyed = KeyedProgram::new(
            program,
            MinimizeMode::Speed,
            MinimizeBackend::default(),
            MapObjective::Delay,
            MapStyle::SplitModules,
        );
        let artifact = synthesize_shape(
            "shape",
            &keyed.canonical,
            MinimizeMode::Speed,
            MinimizeBackend::default(),
            MapObjective::Delay,
            MapStyle::SplitModules,
            &Library::cmos035(),
            1,
        )
        .expect("shape synthesizes");
        (keyed.key, Arc::new(artifact))
    }

    #[test]
    fn digest_depends_on_the_key() {
        let seq2 = sequencer("p", &["a".to_string(), "b".to_string()]);
        let k_speed = KeyedProgram::new(
            &seq2,
            MinimizeMode::Speed,
            MinimizeBackend::default(),
            MapObjective::Delay,
            MapStyle::SplitModules,
        );
        let k_area = KeyedProgram::new(
            &seq2,
            MinimizeMode::Area,
            MinimizeBackend::default(),
            MapObjective::Delay,
            MapStyle::SplitModules,
        );
        let k_cofactor = KeyedProgram::new(
            &seq2,
            MinimizeMode::Speed,
            MinimizeBackend::CubeCofactor,
            MapObjective::Delay,
            MapStyle::SplitModules,
        );
        assert_eq!(k_speed.key.digest(), k_speed.key.digest());
        assert_ne!(k_speed.key.digest(), k_area.key.digest());
        assert_ne!(k_speed.key, k_cofactor.key, "backend must change the key");
        assert_ne!(k_speed.key.digest(), k_cofactor.key.digest());
    }

    #[test]
    fn poisoned_lock_recovers_and_evicts_half_written_entries() {
        let cache = ControllerCache::new();
        let (k1, a1) = artifact_for(&sequencer("p", &["a".to_string(), "b".to_string()]));
        let (k2, a2) = artifact_for(&sequencer(
            "q",
            &["x".to_string(), "y".to_string(), "z".to_string()],
        ));
        assert_ne!(k1, k2, "test needs two distinct shapes");
        cache.store(k1.clone(), a1);

        // Simulate a store crashing mid-insert: bump the write generation,
        // insert the entry, and panic while still holding the lock — the
        // clean generation never advances, so the entry is "half-written".
        let crash = AssertUnwindSafe(|| {
            let mut shelf = cache.entries.lock().unwrap();
            shelf.write_generation += 1;
            let generation = shelf.write_generation;
            shelf.map.insert(
                k2.clone(),
                Entry {
                    artifact: a2.clone(),
                    generation,
                },
            );
            panic!("simulated mid-store crash");
        });
        assert!(std::panic::catch_unwind(crash).is_err());

        // The next access recovers instead of panicking on the poisoned
        // lock; the half-written entry is evicted (a retried miss), the
        // completed one is kept.
        assert!(cache.peek(&k2).is_none(), "half-written entry served");
        assert!(cache.peek(&k1).is_some(), "clean entry lost");
        assert_eq!(cache.poison_recoveries(), 1);

        // The cache stays fully usable afterwards.
        cache.store(k2.clone(), a2);
        assert!(cache.peek(&k2).is_some());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.poison_recoveries(), 1, "no further recoveries");
    }
}
