//! End-to-end flow tests.

use crate::pipeline::{run_control_flow, FlowOptions};
use crate::simbuild::{simulate, Done, Scenario};
use bmbe_balsa::{compile_procedure, parse, CompiledDesign};
use bmbe_gates::Library;
use bmbe_sim::prims::Delays;
use std::collections::HashMap;

fn design(src: &str) -> CompiledDesign {
    let prog = parse(src).unwrap();
    compile_procedure(&prog.procedures[0]).unwrap()
}

#[test]
fn two_sync_loop_runs_unoptimized() {
    let d = design("procedure t (sync a; sync b) is begin loop sync a ; sync b end end");
    let flow = run_control_flow(&d, &FlowOptions::unoptimized(), &Library::cmos035()).unwrap();
    assert_eq!(flow.controllers.len(), 2); // loop + seq
    let scenario = Scenario {
        activation_cycles: 1,
        input_values: HashMap::new(),
        memory_init: HashMap::new(),
        done: Done::Syncs {
            port: "b".into(),
            count: 4,
        },
        max_time: 10_000_000,
    };
    let run = simulate(&d, &flow, &scenario, &Delays::default()).unwrap();
    assert!(
        run.completed,
        "stalled at {} ns after {} events",
        run.time_ns, run.events
    );
    assert!(run.sync_counts["a"] >= 4);
}

#[test]
fn two_sync_loop_runs_optimized_and_faster() {
    let d = design("procedure t (sync a; sync b) is begin loop sync a ; sync b end end");
    let lib = Library::cmos035();
    let unopt = run_control_flow(&d, &FlowOptions::unoptimized(), &lib).unwrap();
    let opt = run_control_flow(&d, &FlowOptions::optimized(), &lib).unwrap();
    assert!(opt.controllers.len() < unopt.controllers.len());
    let scenario = Scenario {
        activation_cycles: 1,
        input_values: HashMap::new(),
        memory_init: HashMap::new(),
        done: Done::Syncs {
            port: "b".into(),
            count: 8,
        },
        max_time: 10_000_000,
    };
    let run_u = simulate(&d, &unopt, &scenario, &Delays::default()).unwrap();
    let run_o = simulate(&d, &opt, &scenario, &Delays::default()).unwrap();
    assert!(run_u.completed && run_o.completed);
    assert!(
        run_o.time_ns < run_u.time_ns,
        "optimized {} ns vs unoptimized {} ns",
        run_o.time_ns,
        run_u.time_ns
    );
}

#[test]
fn buffer_moves_data_end_to_end() {
    let d = design(
        "procedure buf (input i : 8 bits; output o : 8 bits) is\n\
         variable x : 8 bits\n\
         begin loop i -> x ; o <- x end end",
    );
    let flow = run_control_flow(&d, &FlowOptions::unoptimized(), &Library::cmos035()).unwrap();
    let mut inputs = HashMap::new();
    inputs.insert("i".to_string(), vec![11, 22, 33]);
    let scenario = Scenario {
        activation_cycles: 1,
        input_values: inputs,
        memory_init: HashMap::new(),
        done: Done::Outputs {
            port: "o".into(),
            count: 3,
        },
        max_time: 10_000_000,
    };
    let run = simulate(&d, &flow, &scenario, &Delays::default()).unwrap();
    assert!(
        run.completed,
        "stalled at {} ns after {} events",
        run.time_ns, run.events
    );
    assert_eq!(run.outputs["o"], vec![11, 22, 33]);
}

#[test]
fn conditional_design_simulates() {
    // Echo every input; additionally sync x when the value is 1.
    let d = design(
        "procedure t (input i : 1 bits; sync x) is\n\
         variable v : 1 bits\n\
         begin loop i -> v ; if v = 1 then sync x else continue end end end",
    );
    let flow = run_control_flow(&d, &FlowOptions::unoptimized(), &Library::cmos035()).unwrap();
    let mut inputs = HashMap::new();
    inputs.insert("i".to_string(), vec![1, 0, 1, 1]);
    let scenario = Scenario {
        activation_cycles: 1,
        input_values: inputs,
        memory_init: HashMap::new(),
        done: Done::Syncs {
            port: "x".into(),
            count: 3,
        },
        max_time: 50_000_000,
    };
    let run = simulate(&d, &flow, &scenario, &Delays::default()).unwrap();
    assert!(
        run.completed,
        "stalled at {} ns after {} events",
        run.time_ns, run.events
    );
}

#[test]
fn optimized_flow_preserves_buffer_behaviour() {
    let d = design(
        "procedure buf (input i : 8 bits; output o : 8 bits) is\n\
         variable x : 8 bits\n\
         begin loop i -> x ; o <- x end end",
    );
    let flow = run_control_flow(&d, &FlowOptions::optimized(), &Library::cmos035()).unwrap();
    let mut inputs = HashMap::new();
    inputs.insert("i".to_string(), vec![5, 6]);
    let scenario = Scenario {
        activation_cycles: 1,
        input_values: inputs,
        memory_init: HashMap::new(),
        done: Done::Outputs {
            port: "o".into(),
            count: 2,
        },
        max_time: 10_000_000,
    };
    let run = simulate(&d, &flow, &scenario, &Delays::default()).unwrap();
    assert!(
        run.completed,
        "stalled at {} ns after {} events",
        run.time_ns, run.events
    );
    assert_eq!(run.outputs["o"], vec![5, 6]);
}

#[test]
fn systolic_counter_benchmark_runs_both_ways() {
    let d = bmbe_designs::scenarios::systolic_counter().unwrap();
    let comparison =
        crate::table3::run_design(&d, &Library::cmos035(), &Delays::default()).unwrap();
    assert!(
        comparison.speed_improvement() > 0.0,
        "expected optimized faster: {comparison}"
    );
}

#[test]
fn wagging_register_benchmark_runs_both_ways() {
    let d = bmbe_designs::scenarios::wagging_register().unwrap();
    let comparison =
        crate::table3::run_design(&d, &Library::cmos035(), &Delays::default()).unwrap();
    assert!(comparison.speed_improvement() > 0.0, "{comparison}");
}

#[test]
fn stack_benchmark_runs_both_ways() {
    let d = bmbe_designs::scenarios::stack().unwrap();
    let comparison =
        crate::table3::run_design(&d, &Library::cmos035(), &Delays::default()).unwrap();
    assert!(comparison.speed_improvement() > 0.0, "{comparison}");
}

#[test]
fn ssem_benchmark_runs_both_ways() {
    let d = bmbe_designs::scenarios::ssem_core().unwrap();
    let comparison =
        crate::table3::run_design(&d, &Library::cmos035(), &Delays::default()).unwrap();
    assert!(comparison.speed_improvement() > 0.0, "{comparison}");
}
