//! Fleet trace correlation: a cold and a warm batch fleet, traced
//! in-process under distinct run IDs, export self-describing JSONL
//! streams whose concatenation analyzes as ONE logical trace — the
//! critical path is rooted at a `batch.run` span whose total matches the
//! measured fleet wall, merge order does not matter, and the per-shape
//! singleflight wait attribution reconciles exactly against the
//! `batch.singleflight_wait_us` histogram.

use bmbe_designs::all_designs;
use bmbe_flow::{run_batch, BatchJob, ControllerCache, DiskCache};
use bmbe_gates::Library;
use bmbe_obs::analyze::parse_merged;
use bmbe_obs::export::export_jsonl;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Instant;

/// Obs state (the enable flag, rings, run ID, metrics) is process-global;
/// every test here owns all of it for its duration.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    TRACE_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A scratch disk-cache directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!(
            "bmbe-trace-merge-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn fleet_jobs(replicas: u64) -> Vec<BatchJob> {
    let designs = all_designs().expect("shipped designs build");
    (0..replicas)
        .flat_map(|r| {
            designs.iter().map(move |d| BatchJob {
                label: format!("{}#{r}", d.name),
                design: d.compiled.clone(),
                scenario: Some(d.scenario.clone()),
                sim_batch: 4,
                seed: r,
                ..BatchJob::new("", d.compiled.clone())
            })
        })
        .collect()
}

/// Runs one traced fleet under `run_id` and returns its JSONL stream plus
/// the wall nanoseconds measured around `run_batch`.
fn traced_fleet(run_id: u64, jobs: &[BatchJob], cache: &ControllerCache, threads: usize) -> (String, u64) {
    let library = Library::cmos035();
    bmbe_obs::set_run_id(run_id);
    // Drain residue from earlier tests so the stream holds only this
    // fleet's spans.
    let _ = bmbe_obs::flush();
    bmbe_obs::set_enabled(true);
    let start = Instant::now();
    let summary = run_batch(jobs, &library, cache, threads);
    let wall_ns = start.elapsed().as_nanos() as u64;
    bmbe_obs::set_enabled(false);
    let trace = bmbe_obs::flush();
    assert_eq!(summary.failed(), 0, "fleet must succeed");
    assert_eq!(trace.run, run_id, "trace is stamped with the fleet's run ID");
    (export_jsonl(&trace), wall_ns)
}

#[test]
fn merged_cold_warm_fleet_has_deterministic_critical_path_matching_wall() {
    let _serial = lock();
    let scratch = Scratch::new("cold-warm");
    let jobs = fleet_jobs(2);

    const COLD_RUN: u64 = 0xc01d_c01d_c01d_c01d;
    const WARM_RUN: u64 = 0x3a43_3a43_3a43_3a43;
    let cold_cache =
        ControllerCache::with_disk(DiskCache::open(&scratch.0).expect("create cache dir"));
    let (cold_jsonl, cold_wall_ns) = traced_fleet(COLD_RUN, &jobs, &cold_cache, 2);
    // A fresh in-memory cache over the now-populated disk directory: the
    // warm fleet resolves shapes from disk, a genuinely separate run.
    let warm_cache =
        ControllerCache::with_disk(DiskCache::open(&scratch.0).expect("reopen cache dir"));
    let (warm_jsonl, warm_wall_ns) = traced_fleet(WARM_RUN, &jobs, &warm_cache, 2);

    // Merge = concatenation, in either order.
    let ab = parse_merged(&format!("{cold_jsonl}{warm_jsonl}")).expect("merged trace parses");
    let ba = parse_merged(&format!("{warm_jsonl}{cold_jsonl}")).expect("merged trace parses");
    assert_eq!(ab.runs.len(), 2, "both runs survive the merge");

    let path = ab.critical_path();
    assert!(!path.segments.is_empty(), "critical path is non-empty");
    let root = &path.segments[0];
    assert_eq!(root.name, "batch.run", "fleet root is the batch.run span");
    assert_eq!(path.total_ns, root.dur_ns, "self times telescope to the root");

    // The path total equals the *owning* fleet's measured wall within 5%:
    // the root span opens and closes inside run_batch, so the only slack
    // is the measurement harness itself.
    let wall_ns = if root.run == COLD_RUN { cold_wall_ns } else { warm_wall_ns };
    let diff = path.total_ns.abs_diff(wall_ns);
    assert!(
        diff * 20 <= wall_ns,
        "critical path {} ns vs fleet wall {} ns differs by more than 5%",
        path.total_ns,
        wall_ns
    );

    // Deterministic under merge order: same total, same segment identity.
    let path_ba = ba.critical_path();
    assert_eq!(path.total_ns, path_ba.total_ns);
    assert_eq!(
        path.segments.iter().map(|s| (&s.name, s.run, s.dur_ns)).collect::<Vec<_>>(),
        path_ba.segments.iter().map(|s| (&s.name, s.run, s.dur_ns)).collect::<Vec<_>>()
    );

    // Every segment self time is attributed somewhere on the path.
    assert_eq!(
        path.segments.iter().map(|s| s.self_ns).sum::<u64>(),
        path.total_ns
    );
}

#[test]
fn wait_attribution_reconciles_with_the_singleflight_histogram() {
    let _serial = lock();
    let jobs = fleet_jobs(3);
    for threads in [1, 4] {
        let histogram = bmbe_obs::histogram!(
            "batch.singleflight_wait_us",
            &[100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000]
        );
        let sum_before = histogram.sum();
        let count_before = histogram.count();
        // Fresh in-memory cache, no disk: every distinct shape is claimed
        // by exactly one job, later replicas wait on the flight.
        let cache = ControllerCache::new();
        let (jsonl, _) = traced_fleet(0x1000 + threads as u64, &jobs, &cache, threads);
        let sum_delta = histogram.sum() - sum_before;
        let count_delta = histogram.count() - count_before;

        let trace = parse_merged(&jsonl).expect("fleet trace parses");
        let rows = trace.wait_attribution();
        let trace_waits: u64 = rows.iter().map(|r| r.waits).sum();
        let trace_wait_us: u64 = rows.iter().map(|r| r.wait_us).sum();

        // The waiter measures its wait once and feeds the same number to
        // the histogram and the span annotation, so the reconciliation is
        // exact — at 1 thread both sides are zero (no concurrent
        // claimant to wait on), at 4 they carry the same total.
        assert_eq!(
            trace_wait_us, sum_delta,
            "threads={threads}: trace attribution disagrees with histogram sum"
        );
        assert_eq!(
            trace_waits, count_delta,
            "threads={threads}: trace wait count disagrees with histogram count"
        );
        if threads == 1 {
            assert_eq!(trace_waits, 0, "a serial fleet never waits");
        }
        // Every attributed wait names the claiming owner's run and its
        // hotspot phase.
        for row in &rows {
            assert!(row.owner_run.is_some(), "wait {:016x} has an owner", row.digest);
            assert!(row.owner_hotspot.is_some(), "owner did real work");
        }
    }
}
