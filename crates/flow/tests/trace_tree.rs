//! Trace determinism: the *span tree* of a traced flow run must not depend
//! on the worker-thread count. Thread ids, timestamps, and sibling
//! completion order all vary run to run; the nesting structure — which
//! phase ran under which span — must not, because fan-out workers parent
//! their spans explicitly on the dispatching span instead of becoming
//! per-thread roots. The comparison uses
//! [`bmbe_obs::export::canonical_span_forest`], which erases exactly those
//! run-to-run degrees of freedom.
//!
//! One `#[test]` on purpose: tracing state (the enabled flag, the rings)
//! is process-global, and a sibling test recording concurrently would
//! interleave its spans into this test's flush.

use bmbe_designs::all_designs;
use bmbe_flow::{run_control_flow, FlowOptions};
use bmbe_gates::Library;
use bmbe_obs::export::{canonical_span_forest, validate};

fn traced_forest(threads: usize) -> String {
    let library = Library::cmos035();
    let designs = all_designs().expect("shipped designs build");
    let design = designs
        .iter()
        .find(|d| d.name == "Stack")
        .expect("Stack benchmark design");
    // Drain anything a previous call left behind so the forest holds only
    // this run.
    drop(bmbe_obs::flush());
    bmbe_obs::set_enabled(true);
    let result = run_control_flow(
        &design.compiled,
        &FlowOptions {
            threads: Some(threads),
            ..FlowOptions::optimized()
        },
        &library,
    )
    .expect("traced flow");
    bmbe_obs::set_enabled(false);
    assert!(!result.controllers.is_empty());
    let trace = bmbe_obs::flush();
    validate(&trace).unwrap_or_else(|e| panic!("{threads}-thread trace invalid: {e}"));
    let forest = canonical_span_forest(&trace);
    assert!(
        forest.contains("shape.compile"),
        "{threads}-thread forest misses the per-shape chain: {forest}"
    );
    forest
}

#[test]
fn span_tree_is_identical_across_thread_counts() {
    let serial = traced_forest(1);
    let fanned = traced_forest(4);
    assert_eq!(
        serial, fanned,
        "span tree must not depend on the worker-thread count"
    );
}
