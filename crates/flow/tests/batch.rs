//! Batch-driver integration tests: fleet-wide exactly-once synthesis
//! (asserted through both the summary accounting and the obs counters),
//! pipeline equivalence, per-job failure isolation, and failed-flight
//! sharing.

use bmbe_designs::all_designs;
use bmbe_flow::{
    run_batch, run_control_flow_with, BatchJob, ControllerCache, FaultPlan, FlowOptions,
};
use bmbe_gates::Library;
use std::sync::Mutex;

/// Obs counters are process-global; tests that assert counter deltas (or
/// drive batches whose counters another test might read) serialize here.
static BATCH_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    BATCH_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Replicated jobs over every benchmark design: one fleet, each distinct
/// shape digest synthesized exactly once no matter the replica count or
/// thread budget — pinned by the registry summary *and* by the
/// `batch.shapes.synthesized` obs counter.
#[test]
fn fleet_synthesizes_each_shape_exactly_once() {
    let _serial = lock();
    let library = Library::cmos035();
    let designs = all_designs().expect("shipped designs build");
    let jobs: Vec<BatchJob> = (0..3)
        .flat_map(|r| {
            designs.iter().map(move |d| BatchJob {
                label: format!("{}#{r}", d.name),
                design: d.compiled.clone(),
                scenario: Some(d.scenario.clone()),
                sim_batch: 4,
                seed: r,
                ..BatchJob::new("", d.compiled.clone())
            })
        })
        .collect();
    for threads in [1, 4] {
        let before = bmbe_obs::counter!("batch.shapes.synthesized").get();
        let cache = ControllerCache::new();
        let summary = run_batch(&jobs, &library, &cache, threads);
        assert_eq!(summary.failed(), 0, "threads={threads}");
        // Exactly once: with an empty starting cache and no failures, the
        // fleet synthesizes each distinct digest once, never more.
        assert_eq!(
            summary.synthesized, summary.distinct_shapes,
            "threads={threads}"
        );
        assert_eq!(
            bmbe_obs::counter!("batch.shapes.synthesized").get() - before,
            summary.synthesized as u64,
            "threads={threads}: obs counter disagrees with the registry"
        );
        // Per-job accounting sums to the fleet totals.
        let (mut synth, mut hits, mut shared) = (0, 0, 0);
        for job in &jobs {
            let report = summary
                .jobs
                .iter()
                .flatten()
                .find(|r| r.label == job.label)
                .expect("every job reported");
            synth += report.synthesized;
            hits += report.cache_hits;
            shared += report.shared;
            // The sim stage ran its full compiled batch.
            assert_eq!(report.sim_lanes, 4, "{}", job.label);
            assert_eq!(report.sim_completed, 4, "{}", job.label);
        }
        assert_eq!(synth, summary.synthesized);
        assert_eq!(hits, summary.cache_hits);
        assert_eq!(shared, summary.shared_waits);
        // Every non-first resolution of a digest was a hit or a shared
        // flight, so the totals cover all resolutions.
        assert!(hits + shared > 0, "replicas must reuse the fleet's shapes");
    }
}

/// A batch of one job produces the pipeline's exact artifacts: same
/// controller count, products, and bit-identical control area.
#[test]
fn batch_results_match_the_pipeline() {
    let _serial = lock();
    let library = Library::cmos035();
    let designs = all_designs().expect("shipped designs build");
    for design in &designs {
        let flow = run_control_flow_with(
            &design.compiled,
            &FlowOptions::optimized(),
            &library,
            &ControllerCache::new(),
        )
        .unwrap_or_else(|e| panic!("{} pipeline: {e}", design.name));
        let summary = run_batch(
            &[BatchJob::new(design.name, design.compiled.clone())],
            &library,
            &ControllerCache::new(),
            1,
        );
        let report = summary.jobs[0]
            .as_ref()
            .unwrap_or_else(|e| panic!("{} batch: {e}", design.name));
        assert_eq!(report.controllers, flow.controllers.len(), "{}", design.name);
        assert_eq!(report.products, flow.total_products(), "{}", design.name);
        assert_eq!(report.control_area, flow.control_area, "{}", design.name);
        assert_eq!(report.components_before, flow.components_before);
    }
}

/// A job whose shape panics fails alone; jobs needing other shapes
/// complete, and the batch reports both in submission order.
#[test]
fn a_failing_job_does_not_take_siblings_down() {
    let _serial = lock();
    let library = Library::cmos035();
    let designs = all_designs().expect("shipped designs build");
    let fault = FaultPlan::parse("synth:0").expect("valid fault spec");
    let mut poisoned = BatchJob::new("poisoned", designs[0].compiled.clone());
    poisoned.options.fault = Some(fault);
    let healthy = BatchJob::new("healthy", designs[2].compiled.clone());
    let summary = run_batch(&[poisoned, healthy], &library, &ControllerCache::new(), 1);
    let failure = summary.jobs[0].as_ref().expect_err("fault must fail job 0");
    assert_eq!(failure.phase, "panic");
    assert!(!failure.component.is_empty(), "failure names the component");
    assert!(failure.error.contains("injected"), "{}", failure.error);
    let report = summary.jobs[1].as_ref().expect("sibling completes");
    assert!(report.synthesized > 0);
    assert_eq!(summary.failed(), 1);
}

/// A failed flight is shared, not retried: the second job needing the
/// same digest fails with the owner's error and the fleet never
/// synthesizes the shape again (exactly-once covers failures too).
#[test]
fn shared_failures_are_not_retried() {
    let _serial = lock();
    let library = Library::cmos035();
    let designs = all_designs().expect("shipped designs build");
    let fault = FaultPlan::parse("synth:0:err").expect("valid fault spec");
    let job = |label: &str| {
        let mut j = BatchJob::new(label, designs[0].compiled.clone());
        j.options.fault = Some(fault.clone());
        j
    };
    let summary = run_batch(&[job("first"), job("second")], &library, &ControllerCache::new(), 1);
    assert_eq!(summary.failed(), 2);
    let first = summary.jobs[0].as_ref().expect_err("owner fails");
    let second = summary.jobs[1].as_ref().expect_err("waiter shares the failure");
    assert_eq!(first.cache_key, second.cache_key, "same digest fails both");
    assert_eq!(first.error, second.error, "waiter reports the owner's error");
    // The failing claim was the only synthesis attempt; nothing landed.
    assert_eq!(summary.synthesized, 0);
}
