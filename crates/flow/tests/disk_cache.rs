//! Disk-cache durability: corrupt, truncated, and wrong-version entries
//! are evicted (never served), concurrent writers leave only complete
//! entries (atomic rename, no torn reads), and artifacts served from a
//! memory hit, a disk hit, or cold synthesis are bit-identical at 1 and 4
//! threads.

use bmbe_core::balsa_to_ch::balsa_to_ch;
use bmbe_designs::all_designs;
use bmbe_flow::cache::codec::encode_entry;
use bmbe_flow::{
    run_control_flow_with, CacheKey, ControllerCache, DiskCache, DiskMiss, FlowOptions,
    KeyedProgram,
};
use bmbe_gates::Library;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A scratch cache directory, removed on drop so tests never leak into a
/// real `BMBE_CACHE_DIR`.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!(
            "bmbe-disk-cache-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// The cache keys the optimized flow will synthesize for a design.
fn design_keys(design: &bmbe_designs::Design) -> Vec<CacheKey> {
    let options = FlowOptions::optimized();
    let mut ctrl = balsa_to_ch(&design.compiled.netlist).expect("translate");
    ctrl.t2_clustering(&options.cluster);
    ctrl.components
        .iter()
        .map(|c| {
            KeyedProgram::new(
                &c.program,
                options.minimize_mode,
                options.minimize_backend,
                options.map_objective,
                options.map_style,
            )
            .key
        })
        .collect()
}

#[test]
fn memory_disk_and_cold_artifacts_are_bit_identical() {
    let scratch = Scratch::new("identical");
    let library = Library::cmos035();
    let designs = all_designs().expect("shipped designs build");
    for threads in [1usize, 4] {
        let mut options = FlowOptions::optimized();
        options.threads = Some(threads);
        // Cold: synthesize everything, write-through to disk.
        let dir = scratch.0.join(format!("t{threads}"));
        let cold_cache =
            ControllerCache::with_disk(DiskCache::open(&dir).expect("create cache dir"));
        for design in &designs {
            let cold = run_control_flow_with(&design.compiled, &options, &library, &cold_cache)
                .unwrap_or_else(|e| panic!("{} cold: {e}", design.name));
            assert!(cold.cache_misses > 0, "{} cold run must miss", design.name);

            // Memory hit: same cache object, every shape already shelved.
            let warm = run_control_flow_with(&design.compiled, &options, &library, &cold_cache)
                .unwrap_or_else(|e| panic!("{} warm: {e}", design.name));
            assert_eq!(warm.cache_misses, 0);

            // Disk hit: a fresh cache over the same directory — the
            // cross-process case — must serve every shape from disk.
            let disk_cache =
                ControllerCache::with_disk(DiskCache::open(&dir).expect("reopen cache dir"));
            let from_disk =
                run_control_flow_with(&design.compiled, &options, &library, &disk_cache)
                    .unwrap_or_else(|e| panic!("{} disk: {e}", design.name));
            assert_eq!(
                from_disk.cache_misses, 0,
                "{} at {threads} threads: disk-hit run must not re-synthesize",
                design.name
            );

            // Flow-level figures are bit-identical (f64 equality, not
            // approximate) across all three sources.
            assert_eq!(cold.control_area, warm.control_area, "{}", design.name);
            assert_eq!(cold.control_area, from_disk.control_area, "{}", design.name);
            assert_eq!(cold.total_products(), from_disk.total_products());

            // Artifact-level: the canonical encoding of every shape loaded
            // from disk equals the encoding of the artifact the cold run
            // synthesized, byte for byte.
            let disk = DiskCache::open(&dir).expect("reopen cache dir");
            for key in design_keys(design) {
                let cold_artifact = cold_cache.peek(&key).expect("cold cache holds the shape");
                let disk_artifact = disk.load(&key).expect("disk holds the shape");
                assert_eq!(
                    encode_entry(&key, &cold_artifact),
                    encode_entry(&key, &disk_artifact),
                    "{} key {:016x} at {threads} threads",
                    design.name,
                    key.digest()
                );
            }
        }
    }
}

#[test]
fn corrupt_truncated_and_wrong_version_entries_are_evicted_not_served() {
    let scratch = Scratch::new("evict");
    let library = Library::cmos035();
    let designs = all_designs().expect("shipped designs build");
    let counter = &designs[0];
    let dir = &scratch.0;
    let cache = ControllerCache::with_disk(DiskCache::open(dir).expect("create cache dir"));
    run_control_flow_with(&counter.compiled, &FlowOptions::optimized(), &library, &cache)
        .expect("cold flow");
    let disk = DiskCache::open(dir).expect("reopen");
    let key = design_keys(counter).remove(0);
    let path = dir.join(format!("{:016x}", key.digest()));
    let good = fs::read(&path).expect("entry written");
    disk.load(&key).expect("pristine entry loads");

    let mangle = |bytes: Vec<u8>| {
        fs::write(&path, bytes).expect("rewrite entry");
    };
    // Flipped payload byte: checksum mismatch.
    let mut corrupt = good.clone();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0x01;
    mangle(corrupt);
    assert_eq!(disk.load(&key).unwrap_err(), DiskMiss::Evicted);
    assert!(!path.exists(), "corrupt entry must be deleted");
    assert_eq!(disk.load(&key).unwrap_err(), DiskMiss::Absent);

    // Truncated mid-payload.
    mangle(good[..good.len() / 2].to_vec());
    assert_eq!(disk.load(&key).unwrap_err(), DiskMiss::Evicted);
    assert!(!path.exists());

    // Truncated inside the header.
    mangle(good[..10].to_vec());
    assert_eq!(disk.load(&key).unwrap_err(), DiskMiss::Evicted);
    assert!(!path.exists());

    // Future format version.
    let mut future = good.clone();
    future[8] = 0xff;
    mangle(future);
    assert_eq!(disk.load(&key).unwrap_err(), DiskMiss::Evicted);
    assert!(!path.exists());

    // Wrong magic.
    let mut alien = good.clone();
    alien[0] = b'X';
    mangle(alien);
    assert_eq!(disk.load(&key).unwrap_err(), DiskMiss::Evicted);
    assert!(!path.exists());

    // An evicted entry is just a miss: the flow re-synthesizes and
    // backfills the slot with a pristine copy.
    let fresh = ControllerCache::with_disk(DiskCache::open(dir).expect("reopen"));
    let redo = run_control_flow_with(&counter.compiled, &FlowOptions::optimized(), &library, &fresh)
        .expect("flow after eviction");
    assert!(redo.cache_misses > 0, "evicted shape must re-synthesize");
    // The backfilled entry loads cleanly and agrees with the original on
    // everything functional (the full entry bytes differ only in the
    // re-synthesis run's wall-clock profile).
    let backfilled = DiskCache::open(dir)
        .expect("reopen")
        .load(&key)
        .expect("entry rewritten");
    let original = cache.peek(&key).expect("original still shelved");
    // (Not the raw entry bytes: those embed the run's wall-clock profile.)
    assert_eq!(
        format!("{:?}", backfilled.controller.output_covers),
        format!("{:?}", original.controller.output_covers)
    );
    assert_eq!(
        format!("{:?}", backfilled.controller.next_state_covers),
        format!("{:?}", original.controller.next_state_covers)
    );
    assert_eq!(backfilled.mapped.area, original.mapped.area);
    assert_eq!(backfilled.bm_states, original.bm_states);
}

#[test]
fn concurrent_writers_never_expose_a_torn_entry() {
    let scratch = Scratch::new("race");
    let library = Library::cmos035();
    let designs = all_designs().expect("shipped designs build");
    let counter = &designs[0];
    let dir = &scratch.0;
    // Synthesize once to get a real artifact to hammer with.
    let cache = ControllerCache::with_disk(DiskCache::open(dir).expect("create cache dir"));
    run_control_flow_with(&counter.compiled, &FlowOptions::optimized(), &library, &cache)
        .expect("cold flow");
    let key = design_keys(counter).remove(0);
    let artifact = cache.peek(&key).expect("artifact cached");
    let expected = encode_entry(&key, &artifact);

    // Two writer handles (stand-ins for two processes: separate tmp-file
    // sequences, same rename target) race against a reader that must only
    // ever observe complete entries.
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        for _ in 0..2 {
            let disk = DiskCache::open(dir).expect("writer handle");
            let key = key.clone();
            let artifact = Arc::clone(&artifact);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    disk.store(&key, &artifact).expect("store");
                }
            });
        }
        let reader = DiskCache::open(dir).expect("reader handle");
        for _ in 0..300 {
            match reader.load(&key) {
                Ok(loaded) => assert_eq!(
                    encode_entry(&key, &loaded),
                    expected,
                    "a reader must only ever see a complete entry"
                ),
                // Absent can race the very first rename; torn entries
                // would surface as Evicted, which must never happen.
                Err(DiskMiss::Absent) => {}
                Err(e) => panic!("torn or unreadable entry: {e:?}"),
            }
        }
        stop.store(true, Ordering::Relaxed);
    });
    // The survivor is complete.
    let survivor = DiskCache::open(dir).expect("reopen").load(&key).expect("entry");
    assert_eq!(encode_entry(&key, &survivor), expected);
}
