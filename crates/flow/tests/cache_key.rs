//! Cache-key canonicalization: the content address must be invariant under
//! channel renaming and sensitive to every synthesis-relevant option.

use bmbe_bm::synth::MinimizeMode;
use bmbe_core::components::{call, decision_wait, sequencer};
use bmbe_flow::{ControllerCache, KeyedProgram, MinimizeBackend};
use bmbe_gates::{Library, MapObjective, MapStyle};

fn names(xs: &[&str]) -> Vec<String> {
    xs.iter().map(|s| (*s).to_string()).collect()
}

const DEFAULTS: (MinimizeMode, MinimizeBackend, MapObjective, MapStyle) = (
    MinimizeMode::Speed,
    MinimizeBackend::Auto,
    MapObjective::Delay,
    MapStyle::SplitModules,
);

#[test]
fn structurally_identical_programs_share_a_key() {
    let (mode, backend, objective, style) = DEFAULTS;
    let a = sequencer("activate", &names(&["left", "right"]));
    let b = sequencer("go", &names(&["first", "second"]));
    let ka = KeyedProgram::new(&a, mode, backend, objective, style);
    let kb = KeyedProgram::new(&b, mode, backend, objective, style);
    assert_eq!(ka.key, kb.key);
    assert_eq!(ka.names, names(&["activate", "left", "right"]));
    assert_eq!(kb.names, names(&["go", "first", "second"]));

    let dw1 = decision_wait("act", &names(&["i0", "i1"]), &names(&["o0", "o1"]));
    let dw2 = decision_wait("trigger", &names(&["p", "q"]), &names(&["u", "v"]));
    assert_eq!(
        KeyedProgram::new(&dw1, mode, backend, objective, style).key,
        KeyedProgram::new(&dw2, mode, backend, objective, style).key
    );
}

#[test]
fn structurally_different_programs_get_different_keys() {
    let (mode, backend, objective, style) = DEFAULTS;
    let seq2 = sequencer("a", &names(&["x", "y"]));
    let seq3 = sequencer("a", &names(&["x", "y", "z"]));
    let call2 = call(&names(&["x", "y"]), "a");
    let k2 = KeyedProgram::new(&seq2, mode, backend, objective, style).key;
    assert_ne!(k2, KeyedProgram::new(&seq3, mode, backend, objective, style).key);
    assert_ne!(k2, KeyedProgram::new(&call2, mode, backend, objective, style).key);
}

#[test]
fn synthesis_options_are_part_of_the_key() {
    let program = sequencer("a", &names(&["x", "y"]));
    let base = KeyedProgram::new(
        &program,
        MinimizeMode::Speed,
        MinimizeBackend::Auto,
        MapObjective::Delay,
        MapStyle::SplitModules,
    );
    let minmode = KeyedProgram::new(
        &program,
        MinimizeMode::Area,
        MinimizeBackend::Auto,
        MapObjective::Delay,
        MapStyle::SplitModules,
    );
    let backend = KeyedProgram::new(
        &program,
        MinimizeMode::Speed,
        MinimizeBackend::CubeCofactor,
        MapObjective::Delay,
        MapStyle::SplitModules,
    );
    let exact = KeyedProgram::new(
        &program,
        MinimizeMode::Speed,
        MinimizeBackend::ExactPrimes,
        MapObjective::Delay,
        MapStyle::SplitModules,
    );
    let objective = KeyedProgram::new(
        &program,
        MinimizeMode::Speed,
        MinimizeBackend::Auto,
        MapObjective::Area,
        MapStyle::SplitModules,
    );
    let style = KeyedProgram::new(
        &program,
        MinimizeMode::Speed,
        MinimizeBackend::Auto,
        MapObjective::Delay,
        MapStyle::WholeController,
    );
    assert_ne!(base.key, minmode.key);
    assert_ne!(base.key, backend.key);
    assert_ne!(base.key, exact.key);
    assert_ne!(backend.key, exact.key);
    assert_ne!(base.key.digest(), backend.key.digest());
    assert_ne!(base.key, objective.key);
    assert_ne!(base.key, style.key);
    // Only the options differ — the canonical text is shared.
    assert_eq!(base.key.canonical, minmode.key.canonical);
    assert_eq!(base.key.canonical, backend.key.canonical);
    assert_eq!(base.key.canonical, style.key.canonical);
}

#[test]
fn renamed_instances_hit_and_options_miss() {
    // get_or_synthesize keys under the default backend internally.
    let (mode, _backend, objective, style) = DEFAULTS;
    let library = Library::cmos035();
    let cache = ControllerCache::new();

    let first = sequencer("activate", &names(&["left", "right"]));
    let (art1, _) = cache
        .get_or_synthesize(&first, mode, objective, style, &library)
        .expect("sequencer synthesizes");
    assert_eq!(cache.stats().misses, 1);
    assert_eq!(cache.stats().hits, 0);

    // Same shape, fresh channel names: must be served from the cache.
    let renamed = sequencer("go", &names(&["first", "second"]));
    let (art2, keyed) = cache
        .get_or_synthesize(&renamed, mode, objective, style, &library)
        .expect("cached sequencer");
    assert_eq!(cache.stats().hits, 1);
    assert_eq!(cache.stats().misses, 1);
    assert!(
        std::sync::Arc::ptr_eq(&art1, &art2),
        "hit must reuse the stored artifact"
    );
    // The name table still maps canonical wires onto *this* instance.
    assert_eq!(keyed.rename_wire("k0_r"), "go_r");
    assert_eq!(keyed.rename_wire("k2_a"), "second_a");
    assert_eq!(keyed.rename_wire("y0"), "y0");

    // Changing MinimizeMode or MapStyle must miss.
    cache
        .get_or_synthesize(&renamed, MinimizeMode::Area, objective, style, &library)
        .expect("area-mode sequencer");
    assert_eq!(cache.stats().misses, 2);
    cache
        .get_or_synthesize(
            &renamed,
            mode,
            objective,
            MapStyle::WholeController,
            &library,
        )
        .expect("whole-controller-style sequencer");
    assert_eq!(cache.stats().misses, 3);
    assert_eq!(cache.len(), 3);
}
