//! Round-trip property tests for the generated design corpus: every
//! program any family (or the random generator) emits must parse, compile
//! through the front end, and synthesize crash-free at small sizes — and
//! synthesis must be digest-identical at 1 and 4 worker threads, the
//! determinism equality the repo pins for the shipped designs.

use bmbe_designs::corpus::{
    call_tree, generate_corpus, pipeline, random_design, token_ring, wagging_chain, CorpusSpec,
    GeneratedDesign,
};
use bmbe_flow::{run_control_flow_with, ControllerCache, FlowOptions, FlowResult};
use bmbe_gates::Library;
use proptest::prelude::*;

fn flow_at(design: &GeneratedDesign, threads: usize) -> FlowResult {
    let mut options = FlowOptions::optimized();
    options.threads = Some(threads);
    options.cache = false;
    let library = Library::cmos035();
    let cache = ControllerCache::new();
    run_control_flow_with(&design.compiled, &options, &library, &cache)
        .unwrap_or_else(|e| panic!("{}: flow failed: {e}", design.name))
}

fn assert_identical(design: &GeneratedDesign, a: &FlowResult, b: &FlowResult) {
    assert_eq!(a.controllers.len(), b.controllers.len(), "{}", design.name);
    assert_eq!(a.total_products(), b.total_products(), "{}", design.name);
    assert_eq!(
        a.control_area.to_bits(),
        b.control_area.to_bits(),
        "{}",
        design.name
    );
    for (x, y) in a.controllers.iter().zip(&b.controllers) {
        assert_eq!(x.name, y.name, "{}", design.name);
        assert_eq!(x.bm_states, y.bm_states, "{}: {}", design.name, x.name);
        assert_eq!(
            x.controller.num_products(),
            y.controller.num_products(),
            "{}: {}",
            design.name,
            x.name
        );
        assert_eq!(
            x.area().to_bits(),
            y.area().to_bits(),
            "{}: {}",
            design.name,
            x.name
        );
    }
}

fn roundtrip(design: &GeneratedDesign) {
    // The constructor already ran parse + compile_procedure on the emitted
    // source; re-parse from the source text to pin that the *text* itself
    // round-trips, not just the in-memory AST.
    let prog = bmbe_balsa::parse(&design.source)
        .unwrap_or_else(|e| panic!("{}: emitted source does not parse: {e}", design.name));
    let recompiled = bmbe_balsa::compile_procedure(&prog.procedures[0])
        .unwrap_or_else(|e| panic!("{}: emitted source does not compile: {e}", design.name));
    recompiled
        .netlist
        .validate()
        .unwrap_or_else(|e| panic!("{}: netlist invalid: {e}", design.name));
    let serial = flow_at(design, 1);
    let parallel = flow_at(design, 4);
    assert_identical(design, &serial, &parallel);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn parametric_families_round_trip(n in 1usize..5, w_ix in 0usize..4) {
        let w = [1u32, 2, 4, 8][w_ix];
        roundtrip(&pipeline(n, w, 3).expect("pipeline"));
        roundtrip(&call_tree(n + 1, w, 3).expect("call_tree"));
        roundtrip(&token_ring(n, w, 3).expect("token_ring"));
        roundtrip(&wagging_chain(n, w, 3).expect("wagging_chain"));
    }

    #[test]
    fn random_programs_round_trip(seed in any::<u64>()) {
        roundtrip(&random_design(seed).expect("random program must build"));
    }
}

/// A corpus slice survives the full front-end + synthesis path end to end
/// (a fixed, replayable complement to the randomized cases above).
#[test]
fn corpus_slice_synthesizes_deterministically() {
    let corpus = generate_corpus(&CorpusSpec { seed: 17, designs: 10 }).expect("corpus");
    for design in &corpus {
        roundtrip(design);
    }
}
