//! Crash flight recorder: a fleet job killed by an injected fault leaves
//! a structured dump behind that names the failing design, component,
//! cache key, and phase; evicting a corrupt disk-cache entry dumps too.
//! Dumps only happen once a sink is configured, so these tests route them
//! into scratch directories via `bmbe_obs::recorder::set_flight_out`.

use bmbe_designs::all_designs;
use bmbe_flow::{
    run_batch, run_control_flow_with, BatchJob, ControllerCache, DiskCache, FaultPlan,
    FlowOptions,
};
use bmbe_gates::Library;
use bmbe_obs::export::validate_json;
use std::path::PathBuf;
use std::sync::Mutex;

/// The flight-recorder sink and dump sequence are process-global.
static FLIGHT_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    FLIGHT_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!(
            "bmbe-flight-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Reads back whatever dump files landed in `dir` (repeat dumps get
/// `.2`, `.3`, ... suffixes, so scan rather than guess).
fn dumps_in(dir: &PathBuf) -> Vec<String> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).expect("scratch dir readable") {
        let path = entry.expect("dir entry").path();
        if path.is_file() {
            out.push(std::fs::read_to_string(&path).expect("dump readable"));
        }
    }
    out
}

#[test]
fn faulted_batch_job_dumps_failing_identity() {
    let _serial = lock();
    let scratch = Scratch::new("fault");
    bmbe_obs::recorder::set_flight_out(Some(
        scratch.0.join("flight.json").to_string_lossy().into_owned(),
    ));

    let library = Library::cmos035();
    let designs = all_designs().expect("shipped designs build");
    let stack = designs.iter().find(|d| d.name == "Stack").expect("Stack shipped");
    let mut options = FlowOptions::optimized();
    options.fault = Some(FaultPlan::parse("synth:0:err").expect("valid plan"));
    let jobs = [BatchJob {
        label: "stack#fault".to_string(),
        options,
        ..BatchJob::new("stack#fault", stack.compiled.clone())
    }];
    let summary = run_batch(&jobs, &library, &ControllerCache::new(), 1);
    bmbe_obs::recorder::set_flight_out(None);

    assert_eq!(summary.failed(), 1, "the injected fault fails the job");
    let failure = summary.jobs[0].as_ref().expect_err("job failed");
    let dumps = dumps_in(&scratch.0);
    assert!(!dumps.is_empty(), "a failing job must leave a dump behind");
    let dump = dumps
        .iter()
        .find(|d| d.contains("\"reason\": \"job-failure\""))
        .expect("job-failure dump present");

    // The dump is valid JSON and carries the failing job's full identity,
    // correlated with what the structured failure reports.
    validate_json(dump).expect("dump is valid JSON");
    assert!(dump.contains("\"flight\": true"));
    for (key, value) in [
        ("design", failure.design.as_str()),
        ("component", failure.component.as_str()),
        ("cache_key", failure.cache_key.as_str()),
        ("phase", "synth"),
    ] {
        assert!(
            dump.contains(&format!("\"{key}\": \"{value}\"")),
            "dump names the failing {key} ({value}): {dump}"
        );
    }
    // The fault injector's own breadcrumb made it into the event ring.
    assert!(dump.contains("fault.fired"), "fault breadcrumb recorded");
}

#[test]
fn evicting_a_corrupt_disk_entry_dumps() {
    let _serial = lock();
    let cache_dir = Scratch::new("evict-cache");
    let dump_dir = Scratch::new("evict-dump");

    let library = Library::cmos035();
    let designs = all_designs().expect("shipped designs build");
    let counter = &designs[0];
    let cache =
        ControllerCache::with_disk(DiskCache::open(&cache_dir.0).expect("create cache dir"));
    run_control_flow_with(&counter.compiled, &FlowOptions::optimized(), &library, &cache)
        .expect("cold flow populates the disk cache");

    // Flip the last byte of one stored entry: checksum mismatch on the
    // next load, which must evict AND dump.
    let entry = std::fs::read_dir(&cache_dir.0)
        .expect("cache dir readable")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.is_file())
        .expect("cold flow wrote at least one entry");
    let mut bytes = std::fs::read(&entry).expect("entry readable");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&entry, &bytes).expect("rewrite entry");

    bmbe_obs::recorder::set_flight_out(Some(
        dump_dir.0.join("flight.json").to_string_lossy().into_owned(),
    ));
    let warm =
        ControllerCache::with_disk(DiskCache::open(&cache_dir.0).expect("reopen cache dir"));
    run_control_flow_with(&counter.compiled, &FlowOptions::optimized(), &library, &warm)
        .expect("warm flow self-heals past the corrupt entry");
    bmbe_obs::recorder::set_flight_out(None);

    let dumps = dumps_in(&dump_dir.0);
    let dump = dumps
        .iter()
        .find(|d| d.contains("\"reason\": \"disk-evict\""))
        .expect("eviction leaves a dump behind");
    validate_json(dump).expect("dump is valid JSON");
    assert!(
        dump.contains("cache.disk.evicted"),
        "eviction breadcrumb recorded: {dump}"
    );
}
