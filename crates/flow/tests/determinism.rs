//! Determinism of the parallel, memoized back-end: on all four benchmark
//! designs, the cached/parallel pipeline must be bit-identical (controller
//! order, product counts, areas, delays) to the seed's serial uncached
//! path, and a warm cache must reproduce the same result again.

use bmbe_designs::all_designs;
use bmbe_flow::{
    run_control_flow, run_control_flow_with, ControllerCache, FlowOptions, FlowResult,
    MinimizeBackend,
};
use bmbe_gates::Library;

fn assert_identical(design: &str, label: &str, reference: &FlowResult, candidate: &FlowResult) {
    assert_eq!(
        reference.controllers.len(),
        candidate.controllers.len(),
        "{design}/{label}: controller count"
    );
    assert_eq!(
        reference.total_products(),
        candidate.total_products(),
        "{design}/{label}: total products"
    );
    assert_eq!(
        reference.control_area.to_bits(),
        candidate.control_area.to_bits(),
        "{design}/{label}: control area ({} vs {})",
        reference.control_area,
        candidate.control_area
    );
    for (r, c) in reference.controllers.iter().zip(&candidate.controllers) {
        assert_eq!(r.name, c.name, "{design}/{label}: controller order");
        assert_eq!(
            r.bm_states, c.bm_states,
            "{design}/{label}/{}: BM states",
            r.name
        );
        assert_eq!(
            r.controller.num_products(),
            c.controller.num_products(),
            "{design}/{label}/{}: products",
            r.name
        );
        assert_eq!(
            r.controller.inputs, c.controller.inputs,
            "{design}/{label}/{}: input names",
            r.name
        );
        assert_eq!(
            r.controller.outputs, c.controller.outputs,
            "{design}/{label}/{}: output names",
            r.name
        );
        assert_eq!(
            r.area().to_bits(),
            c.area().to_bits(),
            "{design}/{label}/{}: area ({} vs {})",
            r.name,
            r.area(),
            c.area()
        );
        assert_eq!(
            r.critical_delay().to_bits(),
            c.critical_delay().to_bits(),
            "{design}/{label}/{}: critical delay ({} vs {})",
            r.name,
            r.critical_delay(),
            c.critical_delay()
        );
        // Exact cover equality, cube for cube: any reordering introduced
        // by a parallel schedule would show up here.
        assert_eq!(
            r.controller.output_covers, c.controller.output_covers,
            "{design}/{label}/{}: output covers",
            r.name
        );
        assert_eq!(
            r.controller.next_state_covers, c.controller.next_state_covers,
            "{design}/{label}/{}: next-state covers",
            r.name
        );
    }
}

#[test]
fn cached_parallel_flow_is_bit_identical_to_serial_uncached() {
    let library = Library::cmos035();
    let designs = all_designs().expect("shipped designs build");
    let mut total_hits = 0usize;
    for design in &designs {
        for (label, options) in [
            ("optimized", FlowOptions::optimized()),
            ("unoptimized", FlowOptions::unoptimized()),
        ] {
            // The seed behaviour: one component at a time, no memoization.
            let reference = run_control_flow(
                &design.compiled,
                &options.clone().serial_uncached(),
                &library,
            )
            .unwrap_or_else(|e| panic!("{}/{label} serial: {e}", design.name));
            assert_eq!(reference.cache_hits, 0);
            assert_eq!(reference.cache_misses, reference.controllers.len());

            // Cold cache, parallel fan-out. Force several workers so the
            // threaded path is exercised even on single-core hosts.
            let mut parallel = options.clone();
            parallel.threads = Some(3);
            let cache = ControllerCache::new();
            let cold = run_control_flow_with(&design.compiled, &parallel, &library, &cache)
                .unwrap_or_else(|e| panic!("{}/{label} cold: {e}", design.name));
            assert_identical(design.name, label, &reference, &cold);
            assert_eq!(
                cold.cache_hits + cold.cache_misses,
                cold.controllers.len(),
                "{}/{label}: hit/miss accounting",
                design.name
            );
            total_hits += cold.cache_hits;

            // Warm cache: every shape must hit, result still identical.
            let warm = run_control_flow_with(&design.compiled, &options, &library, &cache)
                .unwrap_or_else(|e| panic!("{}/{label} warm: {e}", design.name));
            assert_identical(design.name, label, &reference, &warm);
            assert_eq!(
                warm.cache_misses, 0,
                "{}/{label}: warm run must not miss",
                design.name
            );
            assert_eq!(warm.cache_hits, warm.controllers.len());
        }
    }
    // Real designs repeat component shapes; the cache must observe reuse
    // somewhere across the benchmark suite even on cold runs.
    assert!(
        total_hits > 0,
        "no cold-run cache reuse across the four benchmark designs"
    );
}

#[test]
fn per_output_parallel_minimization_is_bit_identical_to_serial() {
    let library = Library::cmos035();
    let designs = all_designs().expect("shipped designs build");
    // Every backend must be deterministic across worker counts: the exact
    // path exercises the partitioned canonical-ascent worklist (per-worker
    // dedup sets merged in chunk order), the cube-cofactor path exercises
    // the order-preserving per-seed EXPAND fan-out, and Auto mixes both.
    for backend in [
        MinimizeBackend::Auto,
        MinimizeBackend::ExactPrimes,
        MinimizeBackend::CubeCofactor,
    ] {
        for design in &designs {
            // Serial, uncached: one function minimized at a time.
            let mut serial = FlowOptions::optimized().serial_uncached();
            serial.minimize_backend = backend;
            let reference = run_control_flow(&design.compiled, &serial, &library)
                .unwrap_or_else(|e| panic!("{}/{backend:?} serial: {e}", design.name));
            // Same uncached path, but with the minimizations inside each
            // controller fanned across workers. Every cover must come back
            // cube-for-cube identical regardless of the worker count.
            for threads in [1usize, 4] {
                let mut options = serial.clone();
                options.threads = Some(threads);
                let candidate = run_control_flow(&design.compiled, &options, &library)
                    .unwrap_or_else(|e| panic!("{}/{backend:?} {threads}t: {e}", design.name));
                assert_eq!(
                    candidate.threads_used, threads,
                    "{}: reported worker count",
                    design.name
                );
                assert_identical(
                    design.name,
                    &format!("{backend:?}-uncached-{threads}t"),
                    &reference,
                    &candidate,
                );
            }
        }
    }
}
