//! Differential property tests for the bit-parallel compiled backend:
//! every per-scenario outcome must match the event-engine oracle's
//! *behaviour* (completion, port traffic, memory contents) exactly — on
//! all four paper designs, on randomized scenario batches, on partial
//! batches narrower than a lane word, and bit-identically at any worker
//! thread count.

use bmbe_designs::{all_designs, scenario_variants, Design};
use bmbe_flow::{
    check_outcome, run_control_flow_with, simulate_scenarios, to_flow_scenario, ControllerCache,
    FaultKind, FaultPhase, FaultPlan, FlowOptions, FlowResult, Scenario, SimBackend,
    SimBuildError,
};
use bmbe_gates::Library;
use bmbe_sim::prims::Delays;

fn flows(designs: &[Design]) -> Vec<FlowResult> {
    let library = Library::cmos035();
    let cache = ControllerCache::new();
    designs
        .iter()
        .map(|d| {
            run_control_flow_with(&d.compiled, &FlowOptions::optimized(), &library, &cache)
                .expect("flow")
        })
        .collect()
}

fn variants(design: &Design, n: usize, seed: u64) -> Vec<Scenario> {
    scenario_variants(design, n, seed)
        .iter()
        .map(to_flow_scenario)
        .collect()
}

/// Full-width batches on every paper design: each of the 64 lanes must
/// reproduce its event-oracle run, and the base lane must still pass the
/// design's functional check.
#[test]
fn compiled_matches_event_oracle_on_all_designs() {
    let designs = all_designs().expect("designs build");
    let delays = Delays::default();
    for (design, flow) in designs.iter().zip(flows(&designs)) {
        let scenarios = variants(design, 64, bm_seed(design));
        let compiled = simulate_scenarios(
            &design.compiled,
            &flow,
            &scenarios,
            &delays,
            SimBackend::Compiled,
            4,
            None,
        );
        let oracle = simulate_scenarios(
            &design.compiled,
            &flow,
            &scenarios,
            &delays,
            SimBackend::EventWheel,
            4,
            None,
        );
        assert_eq!(compiled.len(), 64);
        for (lane, (c, o)) in compiled.iter().zip(&oracle).enumerate() {
            let c = c.as_ref().unwrap_or_else(|e| {
                panic!("{}: compiled lane {lane} failed: {e}", design.name)
            });
            let o = o.as_ref().unwrap_or_else(|e| {
                panic!("{}: oracle lane {lane} failed: {e}", design.name)
            });
            assert!(o.completed, "{}: oracle lane {lane} incomplete", design.name);
            assert!(
                c.same_behaviour(o),
                "{}: lane {lane} diverged from the oracle:\ncompiled: {:?} {:?} {:?}\noracle:   {:?} {:?} {:?}",
                design.name,
                c.outputs,
                c.sync_counts,
                c.memories,
                o.outputs,
                o.sync_counts,
                o.memories
            );
            assert_eq!(c.stats.lanes, 64);
            assert_eq!(c.stats.backend, SimBackend::Compiled);
        }
        // The base lane still satisfies the design's functional check.
        let base = compiled[0].as_ref().unwrap();
        check_outcome(&design.scenario.check, base)
            .unwrap_or_else(|e| panic!("{}: base-lane check failed: {e}", design.name));
    }
}

// A per-design seed so the four designs do not share variant data.
fn bm_seed(design: &Design) -> u64 {
    design.name.bytes().map(u64::from).sum::<u64>() * 0x9e37_79b9
}

/// A partial batch (fewer scenarios than lanes) must behave exactly like
/// the oracle; the dead upper lanes are padding only.
#[test]
fn partial_batches_match_the_oracle() {
    let designs = all_designs().expect("designs build");
    let stack = designs.iter().find(|d| d.name == "Stack").unwrap();
    let flow = flows(std::slice::from_ref(stack)).remove(0);
    let delays = Delays::default();
    let scenarios = variants(stack, 5, 7);
    let compiled = simulate_scenarios(
        &stack.compiled,
        &flow,
        &scenarios,
        &delays,
        SimBackend::Compiled,
        2,
        None,
    );
    let oracle = simulate_scenarios(
        &stack.compiled,
        &flow,
        &scenarios,
        &delays,
        SimBackend::EventWheel,
        2,
        None,
    );
    assert_eq!(compiled.len(), 5);
    for (lane, (c, o)) in compiled.iter().zip(&oracle).enumerate() {
        let c = c.as_ref().expect("compiled lane");
        let o = o.as_ref().expect("oracle lane");
        assert!(c.same_behaviour(o), "partial-batch lane {lane} diverged");
        assert_eq!(c.stats.lanes, 5);
    }
}

/// Partial-batch throughput accounting counts live lanes only: each
/// lane's event count equals its singleton-batch run (the dead padding
/// contributes nothing), `stats.lanes` reports the live count, and the
/// batch events/s figure is exactly the live-lane event sum over the
/// batch wall time.
#[test]
fn partial_batch_stats_count_live_lanes_only() {
    let designs = all_designs().expect("designs build");
    let stack = designs.iter().find(|d| d.name == "Stack").unwrap();
    let flow = flows(std::slice::from_ref(stack)).remove(0);
    let delays = Delays::default();
    let scenarios = variants(stack, 5, 11);
    let batch = simulate_scenarios(
        &stack.compiled,
        &flow,
        &scenarios,
        &delays,
        SimBackend::Compiled,
        1,
        None,
    );
    assert_eq!(batch.len(), 5);
    let mut live_sum = 0u64;
    for (lane, slot) in batch.iter().enumerate() {
        let o = slot.as_ref().expect("batch lane");
        // Each lane's events match the same scenario run as a singleton
        // batch — a dead-lane contribution would break the equality.
        let solo = simulate_scenarios(
            &stack.compiled,
            &flow,
            std::slice::from_ref(&scenarios[lane]),
            &delays,
            SimBackend::Compiled,
            1,
            None,
        );
        let solo = solo[0].as_ref().expect("singleton lane");
        assert_eq!(
            o.events, solo.events,
            "lane {lane}: batched event count differs from its singleton run"
        );
        assert_eq!(o.stats.lanes, 5, "lane {lane}: stats.lanes must be the live count");
        live_sum += o.events;
    }
    // events/s is the live-lane sum over the batch wall: every outcome of
    // the batch reports the same figure, and multiplying it back by the
    // wall recovers the live event total (not a 64-lane-padded one).
    let stats = &batch[0].as_ref().unwrap().stats;
    if stats.wall_s > 0.0 {
        let recovered = stats.events_per_s * stats.wall_s;
        let err = (recovered - live_sum as f64).abs() / live_sum as f64;
        assert!(
            err < 1e-6,
            "events_per_s * wall_s = {recovered}, want {live_sum} (rel err {err})"
        );
    }
}

/// Compiled results are bit-identical whatever the worker-thread count:
/// the circuit is compiled once and wave evaluation is order-independent.
#[test]
fn compiled_results_are_bit_identical_across_thread_counts() {
    let designs = all_designs().expect("designs build");
    let stack = designs.iter().find(|d| d.name == "Stack").unwrap();
    let flow = flows(std::slice::from_ref(stack)).remove(0);
    let delays = Delays::default();
    // 130 scenarios = two full batches and a 2-lane remainder.
    let scenarios = variants(stack, 130, 99);
    let runs: Vec<_> = [1usize, 4]
        .iter()
        .map(|&threads| {
            simulate_scenarios(
                &stack.compiled,
                &flow,
                &scenarios,
                &delays,
                SimBackend::Compiled,
                threads,
                None,
            )
        })
        .collect();
    for (i, (a, b)) in runs[0].iter().zip(&runs[1]).enumerate() {
        let a = a.as_ref().expect("1-thread lane");
        let b = b.as_ref().expect("4-thread lane");
        assert!(
            a.same_result(b),
            "scenario {i}: 1-thread and 4-thread compiled runs differ"
        );
        assert_eq!(a.stats.waves, b.stats.waves, "scenario {i}: wave counts differ");
        assert_eq!(a.stats.lanes, b.stats.lanes);
    }
}

/// `Auto` runs a single scenario on the event engine (timed) and a batch
/// on the compiled engine.
#[test]
fn auto_backend_dispatches_by_batch_size() {
    let designs = all_designs().expect("designs build");
    let counter = &designs[0];
    let flow = flows(std::slice::from_ref(counter)).remove(0);
    let delays = Delays::default();
    let one = variants(counter, 1, 1);
    let r = simulate_scenarios(
        &counter.compiled,
        &flow,
        &one,
        &delays,
        SimBackend::Auto,
        1,
        None,
    );
    let o = r[0].as_ref().expect("single scenario");
    assert_eq!(o.stats.backend, SimBackend::EventWheel);
    assert!(o.time_ns > 0.0, "event runs are timed");
    let three = variants(counter, 3, 1);
    let r = simulate_scenarios(
        &counter.compiled,
        &flow,
        &three,
        &delays,
        SimBackend::Auto,
        1,
        None,
    );
    for o in &r {
        let o = o.as_ref().expect("batched scenario");
        assert_eq!(o.stats.backend, SimBackend::Compiled);
        assert_eq!(o.stats.lanes, 3);
        assert!(o.completed);
    }
}

/// An injected `sim_compile` fault surfaces as a typed error (or an
/// isolated panic) on every scenario of the batch, and never fires on the
/// event backend.
#[test]
fn sim_compile_fault_surfaces_as_typed_error() {
    let designs = all_designs().expect("designs build");
    let counter = &designs[0];
    let flow = flows(std::slice::from_ref(counter)).remove(0);
    let delays = Delays::default();
    let scenarios = variants(counter, 3, 5);
    let plan = FaultPlan {
        phase: FaultPhase::SimCompile,
        nth: 0,
        kind: FaultKind::Error,
    };
    let r = simulate_scenarios(
        &counter.compiled,
        &flow,
        &scenarios,
        &delays,
        SimBackend::Compiled,
        2,
        Some(&plan),
    );
    assert_eq!(r.len(), 3);
    for slot in &r {
        match slot {
            Err(SimBuildError::Compile { controller, detail }) => {
                assert_eq!(*controller, flow.controllers[0].name);
                assert!(detail.contains("injected fault at sim_compile of job 0"), "{detail}");
            }
            other => panic!("expected a typed compile error, got {other:?}"),
        }
    }
    // Panic kind: isolated and surfaced as SimBuildError::Panic.
    let plan = FaultPlan {
        phase: FaultPhase::SimCompile,
        nth: 0,
        kind: FaultKind::Panic,
    };
    let r = simulate_scenarios(
        &counter.compiled,
        &flow,
        &scenarios,
        &delays,
        SimBackend::Compiled,
        2,
        Some(&plan),
    );
    for slot in &r {
        match slot {
            Err(SimBuildError::Panic(payload)) => {
                assert!(payload.contains("injected fault: panic at phase sim_compile"), "{payload}");
            }
            other => panic!("expected a caught panic, got {other:?}"),
        }
    }
    // The same plan is inert on the event backend (no sim_compile phase).
    let r = simulate_scenarios(
        &counter.compiled,
        &flow,
        &scenarios,
        &delays,
        SimBackend::EventWheel,
        2,
        Some(&plan),
    );
    for slot in &r {
        assert!(slot.is_ok(), "event backend must ignore sim_compile faults");
    }
}
