//! Fault injection against the parallel, memoized back-end: an injected
//! panic (or typed error) in one synthesis job must fail only that
//! design's flow — with the job's cache key and phase in the error — while
//! sibling flows sharing the cache stay healthy, the cache remains usable
//! afterward, and the failing job is the same whatever the worker-thread
//! count.

use bmbe_core::balsa_to_ch::balsa_to_ch;
use bmbe_designs::all_designs;
use bmbe_flow::{
    run_control_flow, run_control_flow_with, ControllerCache, FaultKind, FaultPhase, FaultPlan,
    FlowError, FlowOptions, KeyedProgram, ShapeError,
};
use bmbe_gates::Library;

fn faulted(phase: FaultPhase, nth: usize, kind: FaultKind) -> FlowOptions {
    let mut options = FlowOptions::optimized();
    options.threads = Some(3);
    options.fault = Some(FaultPlan { phase, nth, kind });
    options
}

/// The (component, cache-key) pairs the flow would synthesize for a
/// design, computed independently of the pipeline: translate, cluster,
/// key. Used to check the error's cache key against ground truth.
fn component_keys(design: &bmbe_designs::Design, options: &FlowOptions) -> Vec<(String, String)> {
    let mut ctrl = balsa_to_ch(&design.compiled.netlist).expect("translate");
    if options.optimize {
        ctrl.t2_clustering(&options.cluster);
    }
    ctrl.components
        .iter()
        .map(|c| {
            let keyed = KeyedProgram::new(
                &c.program,
                options.minimize_mode,
                options.minimize_backend,
                options.map_objective,
                options.map_style,
            );
            (c.name.clone(), format!("{:016x}", keyed.key.digest()))
        })
        .collect()
}

/// Destructures the one error shape a fault may produce.
fn job_error(err: FlowError) -> (String, String, String, &'static str, ShapeError) {
    match err {
        FlowError::Job {
            design,
            component,
            cache_key,
            phase,
            error,
        } => (design, component, cache_key, phase, error),
        other => panic!("expected FlowError::Job, got: {other}"),
    }
}

#[test]
fn injected_panic_fails_only_that_flow_and_names_the_job() {
    let library = Library::cmos035();
    let designs = all_designs().expect("shipped designs build");
    let cache = ControllerCache::new();
    let options = faulted(FaultPhase::Synth, 0, FaultKind::Panic);

    // The faulted flow fails with full job context.
    let err = run_control_flow_with(&designs[0].compiled, &options, &library, &cache)
        .err()
        .expect("injected panic must fail the flow");
    let text = err.to_string();
    let (design, component, cache_key, phase, shape) = job_error(err);
    assert_eq!(design, designs[0].compiled.netlist.name());
    assert_eq!(phase, "panic", "a caught unwind reports phase \"panic\"");
    match &shape {
        ShapeError::Panic(payload) => assert!(
            payload.contains("injected fault: panic at phase synth of job 0"),
            "panic payload must carry the injection message, got: {payload}"
        ),
        other => panic!("expected ShapeError::Panic, got: {other}"),
    }
    // The error names the failing component's content-addressed cache key.
    let keys = component_keys(&designs[0], &options);
    let expected = keys
        .iter()
        .find(|(name, _)| *name == component)
        .unwrap_or_else(|| panic!("error names unknown component {component:?}"));
    assert_eq!(cache_key, expected.1, "{component}: cache key mismatch");
    assert!(
        text.contains(&cache_key) && text.contains("phase panic"),
        "error text must name the cache key and phase: {text}"
    );

    // Sibling designs sharing the cache are unaffected.
    let clean = FlowOptions::optimized();
    run_control_flow_with(&designs[1].compiled, &clean, &library, &cache)
        .expect("sibling design sharing the cache must still succeed");

    // The shared cache stays healthy: a clean re-run of the faulted design
    // succeeds, and a second one is served entirely from the cache.
    let rerun = run_control_flow_with(&designs[0].compiled, &clean, &library, &cache)
        .expect("clean re-run after the fault must succeed");
    assert_eq!(rerun.controllers.len(), keys.len());
    let warm = run_control_flow_with(&designs[0].compiled, &clean, &library, &cache)
        .expect("warm re-run after the fault must succeed");
    assert_eq!(warm.cache_misses, 0, "warm run after recovery must hit");
    assert_eq!(warm.cache_hits, warm.controllers.len());
    assert_eq!(cache.poison_recoveries(), 0, "no lock was poisoned");
}

#[test]
fn typed_injected_error_reports_its_phase() {
    let library = Library::cmos035();
    let designs = all_designs().expect("shipped designs build");
    let options = faulted(FaultPhase::Verify, 0, FaultKind::Error);
    let err = run_control_flow(&designs[0].compiled, &options, &library)
        .err()
        .expect("injected error must fail the flow");
    let text = err.to_string();
    let (_, _, cache_key, phase, shape) = job_error(err);
    assert_eq!(phase, "verify");
    assert!(
        matches!(shape, ShapeError::Injected(FaultPhase::Verify)),
        "expected ShapeError::Injected(Verify), got: {shape}"
    );
    assert!(
        text.contains("phase verify") && text.contains(&cache_key),
        "error text must name the phase and cache key: {text}"
    );
}

#[test]
fn injected_prime_gen_panic_unwinds_from_inside_the_minimizer() {
    // A prime_gen-phase plan is carried into the logic crate's minimizer
    // (it fires inside the backend, not at the flow's phase gate), so a
    // panic kind unwinds out of a per-function minimization job.
    let library = Library::cmos035();
    let designs = all_designs().expect("shipped designs build");
    let cache = ControllerCache::new();
    let options = faulted(FaultPhase::PrimeGen, 0, FaultKind::Panic);
    let err = run_control_flow_with(&designs[0].compiled, &options, &library, &cache)
        .err()
        .expect("injected prime_gen panic must fail the flow");
    let (_, _, _, phase, shape) = job_error(err);
    assert_eq!(phase, "panic", "a caught unwind reports phase \"panic\"");
    match &shape {
        ShapeError::Panic(payload) => assert!(
            payload.contains("injected fault: panic at phase prime_gen"),
            "panic payload must carry the injection message, got: {payload}"
        ),
        other => panic!("expected ShapeError::Panic, got: {other}"),
    }
    // The cache stays healthy afterwards.
    run_control_flow_with(
        &designs[0].compiled,
        &FlowOptions::optimized(),
        &library,
        &cache,
    )
    .expect("clean re-run after the prime_gen fault must succeed");
}

#[test]
fn typed_prime_gen_error_reports_the_prime_gen_phase() {
    let library = Library::cmos035();
    let designs = all_designs().expect("shipped designs build");
    let options = faulted(FaultPhase::PrimeGen, 0, FaultKind::Error);
    let err = run_control_flow(&designs[0].compiled, &options, &library)
        .err()
        .expect("injected prime_gen error must fail the flow");
    let text = err.to_string();
    let (_, _, cache_key, phase, shape) = job_error(err);
    assert_eq!(phase, "prime_gen");
    assert!(
        matches!(shape, ShapeError::Injected(FaultPhase::PrimeGen)),
        "expected ShapeError::Injected(PrimeGen), got: {shape}"
    );
    assert!(
        text.contains("phase prime_gen") && text.contains(&cache_key),
        "error text must name the phase and cache key: {text}"
    );
}

#[test]
fn thread_count_does_not_change_the_failing_job() {
    let library = Library::cmos035();
    let designs = all_designs().expect("shipped designs build");
    for fault_phase in [FaultPhase::Synth, FaultPhase::PrimeGen] {
        for kind in [FaultKind::Panic, FaultKind::Error] {
            let mut reports = Vec::new();
            for threads in [1usize, 4] {
                let mut options = faulted(fault_phase, 0, kind);
                options.threads = Some(threads);
                let err = run_control_flow(&designs[0].compiled, &options, &library)
                    .err()
                    .unwrap_or_else(|| panic!("{threads}-thread run must fail"));
                let (design, component, cache_key, phase, _) = job_error(err);
                reports.push((threads, design, component, cache_key, phase));
            }
            let (_, d1, c1, k1, p1) = &reports[0];
            let (_, d4, c4, k4, p4) = &reports[1];
            assert_eq!((d1, c1, k1, p1), (d4, c4, k4, p4), "{fault_phase:?}/{kind:?}: 1-thread and 4-thread runs must report the identical failing job");
        }
    }
}

#[test]
fn fault_on_the_uncached_path_names_the_component() {
    let library = Library::cmos035();
    let designs = all_designs().expect("shipped designs build");
    let mut options = faulted(FaultPhase::Compile, 0, FaultKind::Error);
    options.cache = false;
    let err = run_control_flow(&designs[0].compiled, &options, &library)
        .err()
        .expect("injected error must fail the uncached flow");
    let (_, component, cache_key, phase, _) = job_error(err);
    assert_eq!(phase, "compile");
    // Uncached job 0 is the first component in deterministic order.
    let keys = component_keys(&designs[0], &options);
    assert_eq!(component, keys[0].0);
    assert_eq!(cache_key, keys[0].1);
}

#[test]
fn sim_compile_fault_fails_only_the_compiled_backend() {
    // The sim_compile phase lives downstream of synthesis: the flow itself
    // must succeed, and the fault fires only when the compiled simulation
    // backend is built (see tests/compiled_sim.rs for the surfaced error).
    let library = Library::cmos035();
    let designs = all_designs().expect("shipped designs build");
    let options = faulted(FaultPhase::SimCompile, 0, FaultKind::Error);
    let flow = run_control_flow(&designs[0].compiled, &options, &library)
        .expect("a sim_compile fault must not fail synthesis");
    let plan = options.fault.unwrap();
    let scenarios = vec![bmbe_flow::to_flow_scenario(&designs[0].scenario); 2];
    let results = bmbe_flow::simulate_scenarios(
        &designs[0].compiled,
        &flow,
        &scenarios,
        &bmbe_sim::prims::Delays::default(),
        bmbe_flow::SimBackend::Compiled,
        1,
        Some(&plan),
    );
    for slot in results {
        match slot {
            Err(bmbe_flow::SimBuildError::Compile { detail, .. }) => {
                assert!(detail.contains("injected fault at sim_compile"), "{detail}")
            }
            other => panic!("expected a typed sim_compile error, got {other:?}"),
        }
    }
}

#[test]
fn fault_aimed_past_the_fanout_is_inert() {
    let library = Library::cmos035();
    let designs = all_designs().expect("shipped designs build");
    let options = faulted(FaultPhase::Synth, 9999, FaultKind::Panic);
    run_control_flow(&designs[0].compiled, &options, &library)
        .expect("a plan targeting a job index past the fan-out must not fire");
}

/// A scratch cache directory for the `cache_io` fault tests, removed on
/// drop so faulted runs never leak into a real `BMBE_CACHE_DIR`.
struct ScratchDir(std::path::PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        let dir = std::env::temp_dir().join(format!(
            "bmbe-fault-cache-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// An injected disk-write failure degrades that shape to an unpersisted
/// cache miss: the flow still succeeds, the unaffected entry lands on
/// disk, and a later pristine run backfills the missing one.
#[test]
fn faulted_cache_write_degrades_to_a_miss_and_the_flow_succeeds() {
    use bmbe_flow::DiskCache;
    let scratch = ScratchDir::new("write");
    let library = Library::cmos035();
    let designs = all_designs().expect("shipped designs build");
    let counter = &designs[0]; // two unique shapes
    let shapes = component_keys(counter, &FlowOptions::optimized());
    let unique: std::collections::HashSet<&String> = shapes.iter().map(|(_, k)| k).collect();
    assert_eq!(unique.len(), 2, "test assumes two unique shapes");
    // Disk op order for a cold 2-shape run: load #0, load #1 (both miss),
    // then store #2, store #3. Fault op 2: the first store fails.
    let plan = FaultPlan {
        phase: FaultPhase::CacheIo,
        nth: 2,
        kind: FaultKind::Error,
    };
    let cache = bmbe_flow::ControllerCache::with_disk(
        DiskCache::with_fault(&scratch.0, Some(plan)).expect("create cache dir"),
    );
    let flow = run_control_flow_with(&counter.compiled, &FlowOptions::optimized(), &library, &cache)
        .expect("a disk-write fault must not fail the flow");
    assert_eq!(flow.cache_misses, 2);
    // Only the unfaulted store landed.
    let disk = DiskCache::open(&scratch.0).expect("reopen");
    assert_eq!(disk.len(), 1, "the faulted write must not leave an entry");
    // The in-memory layer still holds both shapes: a warm rerun is all hits.
    let warm = run_control_flow_with(&counter.compiled, &FlowOptions::optimized(), &library, &cache)
        .expect("warm flow");
    assert_eq!(warm.cache_misses, 0);
    // A pristine cache over the same directory re-synthesizes only the
    // missing shape and backfills it.
    let fresh = bmbe_flow::ControllerCache::with_disk(DiskCache::open(&scratch.0).expect("reopen"));
    let redo = run_control_flow_with(&counter.compiled, &FlowOptions::optimized(), &library, &fresh)
        .expect("flow after degraded write");
    assert_eq!(redo.cache_misses, 1, "only the unpersisted shape re-runs");
    assert_eq!(DiskCache::open(&scratch.0).expect("reopen").len(), 2);
}

/// An injected disk-read failure is a plain miss (the entry survives for
/// the next reader): the flow re-synthesizes and still succeeds.
#[test]
fn faulted_cache_read_is_a_miss_and_the_flow_succeeds() {
    use bmbe_flow::DiskCache;
    let scratch = ScratchDir::new("read");
    let library = Library::cmos035();
    let designs = all_designs().expect("shipped designs build");
    let counter = &designs[0];
    // Populate the directory.
    let seed_cache = bmbe_flow::ControllerCache::with_disk(
        DiskCache::open(&scratch.0).expect("create cache dir"),
    );
    run_control_flow_with(&counter.compiled, &FlowOptions::optimized(), &library, &seed_cache)
        .expect("cold flow");
    let entries = DiskCache::open(&scratch.0).expect("reopen").len();
    assert!(entries > 0);
    // Fault the first read of a fresh cache: that shape re-synthesizes.
    let plan = FaultPlan {
        phase: FaultPhase::CacheIo,
        nth: 0,
        kind: FaultKind::Error,
    };
    let cache = bmbe_flow::ControllerCache::with_disk(
        DiskCache::with_fault(&scratch.0, Some(plan)).expect("reopen"),
    );
    let flow = run_control_flow_with(&counter.compiled, &FlowOptions::optimized(), &library, &cache)
        .expect("a disk-read fault must not fail the flow");
    assert_eq!(flow.cache_misses, 1, "the unreadable shape re-synthesizes");
    // The entry was left in place, not evicted.
    assert_eq!(DiskCache::open(&scratch.0).expect("reopen").len(), entries);
}

/// A `cache_io` panic (not just a typed error) is caught by the cache
/// layer's job isolation: the flow still succeeds.
#[test]
fn cache_io_panic_is_contained_by_the_cache_layer() {
    use bmbe_flow::DiskCache;
    let scratch = ScratchDir::new("panic");
    let library = Library::cmos035();
    let designs = all_designs().expect("shipped designs build");
    let plan = FaultPlan {
        phase: FaultPhase::CacheIo,
        nth: 0,
        kind: FaultKind::Panic,
    };
    let cache = bmbe_flow::ControllerCache::with_disk(
        DiskCache::with_fault(&scratch.0, Some(plan)).expect("create cache dir"),
    );
    let flow = run_control_flow_with(
        &designs[0].compiled,
        &FlowOptions::optimized(),
        &library,
        &cache,
    )
    .expect("a panicking disk layer must not fail the flow");
    assert!(flow.cache_misses > 0);
}
