//! Trace exporters: Chrome trace-event JSON (`chrome://tracing`,
//! [Perfetto](https://ui.perfetto.dev)), a JSONL event log, span-tree
//! canonicalization (the determinism tests compare trees, not timestamps),
//! trace validation, and a dependency-free JSON well-formedness checker
//! used by `obs_report --check`.

use crate::ring::{Drained, RecordKind, Sample};
use std::collections::HashMap;
use std::fmt::Write as _;

/// A flushed trace: every lane's records (sorted by timestamp; stable, so
/// same-lane order survives ties), the callsite table to resolve names, the
/// lane names, and the drop count.
#[derive(Debug, Default)]
pub struct Trace {
    /// Records across all lanes, sorted by `t_ns`.
    pub events: Vec<Sample>,
    /// Callsite id `i + 1` → `(name, category)`.
    pub callsites: Vec<(&'static str, &'static str)>,
    /// `(lane, thread name)` per recording lane.
    pub lanes: Vec<(u32, String)>,
    /// Records dropped to full rings.
    pub dropped: u64,
    /// The producing process's run id (see [`crate::run_id`]); stamped by
    /// [`crate::flush`] so the JSONL stream is self-describing.
    pub run: u64,
    /// Dynamic string table (annotation values): id `i + 1` → string.
    pub strings: Vec<String>,
}

impl Trace {
    /// Assembles a trace from drained rings plus the callsite table.
    pub fn from_drained(drained: Drained, callsites: Vec<(&'static str, &'static str)>) -> Trace {
        let Drained {
            mut samples,
            lanes,
            dropped,
        } = drained;
        samples.sort_by_key(|s| s.rec.t_ns);
        Trace {
            events: samples,
            callsites,
            lanes,
            dropped,
            run: 0,
            strings: Vec::new(),
        }
    }

    /// The name of a callsite id (empty for unknown ids).
    pub fn name(&self, callsite: u32) -> &'static str {
        self.callsites
            .get(callsite.wrapping_sub(1) as usize)
            .map_or("", |(n, _)| n)
    }

    /// The category of a callsite id (empty for unknown ids).
    pub fn cat(&self, callsite: u32) -> &'static str {
        self.callsites
            .get(callsite.wrapping_sub(1) as usize)
            .map_or("", |(_, c)| c)
    }

    /// Whether any record came from the named callsite.
    pub fn has_callsite(&self, name: &str) -> bool {
        self.events.iter().any(|s| self.name(s.rec.callsite) == name)
    }

    /// Resolves a dynamic string id (the `value` of an `AnnotateStr`
    /// record) against the string table; empty for unknown ids.
    pub fn string(&self, id: i64) -> &str {
        usize::try_from(id)
            .ok()
            .and_then(|ix| self.strings.get(ix.wrapping_sub(1)))
            .map_or("", String::as_str)
    }
}

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders the trace in Chrome trace-event format (JSON object form). Spans
/// become `B`/`E` duration events on their real lane (`tid`), instants
/// become `i` events, and metric samples become `C` counter events — the
/// parallel fan-out shows up as one lane per worker thread. Open
/// `chrome://tracing` or Perfetto and load the file.
pub fn export_chrome(trace: &Trace) -> String {
    let mut out = String::from("{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n");
    let mut first = true;
    let mut push = |line: String, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        out.push_str("  ");
        out.push_str(&line);
    };
    for (lane, name) in &trace.lanes {
        let mut escaped = String::new();
        escape(name, &mut escaped);
        push(
            format!(
                "{{\"ph\": \"M\", \"pid\": 1, \"tid\": {lane}, \"name\": \"thread_name\", \
                 \"args\": {{\"name\": \"{escaped}\"}}}}"
            ),
            &mut out,
        );
    }
    for s in &trace.events {
        let name = trace.name(s.rec.callsite);
        let cat = trace.cat(s.rec.callsite);
        let cat = if cat.is_empty() { "bmbe" } else { cat };
        let ts = s.rec.t_ns as f64 / 1000.0; // Chrome wants microseconds.
        let line = match s.rec.kind {
            RecordKind::Open => format!(
                "{{\"ph\": \"B\", \"pid\": 1, \"tid\": {}, \"ts\": {ts:.3}, \"name\": \"{name}\", \
                 \"cat\": \"{cat}\", \"args\": {{\"span\": {}, \"parent\": {}}}}}",
                s.lane, s.rec.span, s.rec.parent
            ),
            RecordKind::Close => format!(
                "{{\"ph\": \"E\", \"pid\": 1, \"tid\": {}, \"ts\": {ts:.3}, \"name\": \"{name}\", \
                 \"cat\": \"{cat}\", \"args\": {{\"span\": {}}}}}",
                s.lane, s.rec.span
            ),
            RecordKind::Instant => format!(
                "{{\"ph\": \"i\", \"pid\": 1, \"tid\": {}, \"ts\": {ts:.3}, \"name\": \"{name}\", \
                 \"cat\": \"{cat}\", \"s\": \"t\", \"args\": {{\"value\": {}}}}}",
                s.lane, s.rec.value
            ),
            RecordKind::Counter => format!(
                "{{\"ph\": \"C\", \"pid\": 1, \"tid\": {}, \"ts\": {ts:.3}, \"name\": \"{name}\", \
                 \"args\": {{\"value\": {}}}}}",
                s.lane, s.rec.value
            ),
            RecordKind::AnnotateNum => format!(
                "{{\"ph\": \"i\", \"pid\": 1, \"tid\": {}, \"ts\": {ts:.3}, \"name\": \"{name}\", \
                 \"cat\": \"{cat}\", \"s\": \"t\", \"args\": {{\"span\": {}, \"value\": {}}}}}",
                s.lane, s.rec.span, s.rec.value
            ),
            RecordKind::AnnotateStr => {
                let mut escaped = String::new();
                escape(trace.string(s.rec.value), &mut escaped);
                format!(
                    "{{\"ph\": \"i\", \"pid\": 1, \"tid\": {}, \"ts\": {ts:.3}, \
                     \"name\": \"{name}\", \"cat\": \"{cat}\", \"s\": \"t\", \
                     \"args\": {{\"span\": {}, \"str\": \"{escaped}\"}}}}",
                    s.lane, s.rec.span
                )
            }
        };
        push(line, &mut out);
    }
    out.push_str("\n]}\n");
    out
}

/// Renders the trace as one JSON object per line (JSONL): a machine-
/// greppable event log with names resolved.
///
/// The stream is self-describing: the first line is a `meta` record
/// carrying the producing run's id (`{"kind": "meta", "run": "<16 hex>",
/// ...}`), so the JSONL files of several fleet processes can be merged by
/// plain concatenation — every following event line belongs to the most
/// recent `meta` run, and span ids are only unique *within* one run.
/// [`crate::analyze`] consumes exactly this format.
pub fn export_jsonl(trace: &Trace) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"kind\": \"meta\", \"run\": \"{:016x}\", \"lanes\": {}, \"dropped\": {}}}",
        trace.run,
        trace.lanes.len(),
        trace.dropped
    );
    for s in &trace.events {
        let kind = match s.rec.kind {
            RecordKind::Open => "open",
            RecordKind::Close => "close",
            RecordKind::Instant => "instant",
            RecordKind::Counter => "counter",
            RecordKind::AnnotateNum => "annot",
            RecordKind::AnnotateStr => "annot",
        };
        if s.rec.kind == RecordKind::AnnotateStr {
            let mut escaped = String::new();
            escape(trace.string(s.rec.value), &mut escaped);
            let _ = writeln!(
                out,
                "{{\"kind\": \"annot\", \"name\": \"{}\", \"t_ns\": {}, \"lane\": {}, \
                 \"span\": {}, \"parent\": 0, \"str\": \"{escaped}\"}}",
                trace.name(s.rec.callsite),
                s.rec.t_ns,
                s.lane,
                s.rec.span,
            );
            continue;
        }
        let _ = writeln!(
            out,
            "{{\"kind\": \"{kind}\", \"name\": \"{}\", \"t_ns\": {}, \"lane\": {}, \
             \"span\": {}, \"parent\": {}, \"value\": {}}}",
            trace.name(s.rec.callsite),
            s.rec.t_ns,
            s.lane,
            s.rec.span,
            s.rec.parent,
            s.rec.value
        );
    }
    out
}

/// Checks trace well-formedness: every opened span closes exactly once,
/// spans close on the lane that opened them in LIFO order, no record refers
/// to an unregistered callsite, and no records were dropped.
///
/// # Errors
///
/// Returns a description of the first violation.
pub fn validate(trace: &Trace) -> Result<(), String> {
    if trace.dropped > 0 {
        return Err(format!("{} records dropped to full rings", trace.dropped));
    }
    // Per-lane open-span stacks.
    let mut stacks: HashMap<u32, Vec<u64>> = HashMap::new();
    let mut closed: HashMap<u64, u32> = HashMap::new();
    for s in &trace.events {
        if s.rec.callsite == 0 || s.rec.callsite as usize > trace.callsites.len() {
            return Err(format!("record with unknown callsite id {}", s.rec.callsite));
        }
        match s.rec.kind {
            RecordKind::Open => stacks.entry(s.lane).or_default().push(s.rec.span),
            RecordKind::Close => {
                let stack = stacks.entry(s.lane).or_default();
                match stack.pop() {
                    Some(top) if top == s.rec.span => {}
                    Some(top) => {
                        return Err(format!(
                            "lane {}: span {} closed while span {top} was innermost",
                            s.lane, s.rec.span
                        ))
                    }
                    None => {
                        return Err(format!(
                            "lane {}: span {} closed with no span open",
                            s.lane, s.rec.span
                        ))
                    }
                }
                *closed.entry(s.rec.span).or_insert(0) += 1;
            }
            RecordKind::Instant
            | RecordKind::Counter
            | RecordKind::AnnotateNum
            | RecordKind::AnnotateStr => {}
        }
    }
    for (lane, stack) in &stacks {
        if let Some(span) = stack.last() {
            return Err(format!("lane {lane}: span {span} never closed"));
        }
    }
    if let Some((span, n)) = closed.iter().find(|(_, &n)| n > 1) {
        return Err(format!("span {span} closed {n} times"));
    }
    Ok(())
}

/// The canonical form of the trace's span forest: nesting by parent links,
/// timestamps, thread ids, and sibling order all erased. Two runs of the
/// same work — serial or fanned out — produce equal canonical forms, which
/// is exactly what the flow determinism test asserts.
///
/// The form is a string: `name(child,child,...)` with children sorted
/// lexicographically by their own canonical forms.
pub fn canonical_span_forest(trace: &Trace) -> String {
    struct Node {
        name: &'static str,
        children: Vec<usize>,
    }
    let mut nodes: Vec<Node> = Vec::new();
    let mut by_span: HashMap<u64, usize> = HashMap::new();
    let mut roots: Vec<usize> = Vec::new();
    for s in &trace.events {
        if s.rec.kind != RecordKind::Open {
            continue;
        }
        let ix = nodes.len();
        nodes.push(Node {
            name: trace.name(s.rec.callsite),
            children: Vec::new(),
        });
        by_span.insert(s.rec.span, ix);
        match by_span.get(&s.rec.parent) {
            Some(&p) if s.rec.parent != 0 => nodes[p].children.push(ix),
            _ => roots.push(ix),
        }
    }
    fn render(nodes: &[Node], ix: usize) -> String {
        let mut kids: Vec<String> = nodes[ix].children.iter().map(|&c| render(nodes, c)).collect();
        kids.sort();
        if kids.is_empty() {
            nodes[ix].name.to_string()
        } else {
            format!("{}({})", nodes[ix].name, kids.join(","))
        }
    }
    let mut rendered: Vec<String> = roots.iter().map(|&r| render(&nodes, r)).collect();
    rendered.sort();
    rendered.join(";")
}

/// A dependency-free JSON well-formedness check (objects, arrays, strings
/// with escapes, numbers, booleans, null). Accepts exactly one top-level
/// value. Used by `obs_report --check` to prove the emitted `trace.json`
/// parses.
///
/// # Errors
///
/// Returns `(byte offset, description)` of the first syntax error.
pub fn validate_json(text: &str) -> Result<(), (usize, String)> {
    let b = text.as_bytes();
    let mut i = 0usize;
    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
            *i += 1;
        }
    }
    fn value(b: &[u8], i: &mut usize) -> Result<(), (usize, String)> {
        skip_ws(b, i);
        match b.get(*i) {
            None => Err((*i, "unexpected end of input".into())),
            Some(b'{') => {
                *i += 1;
                skip_ws(b, i);
                if b.get(*i) == Some(&b'}') {
                    *i += 1;
                    return Ok(());
                }
                loop {
                    skip_ws(b, i);
                    if b.get(*i) != Some(&b'"') {
                        return Err((*i, "expected object key".into()));
                    }
                    string(b, i)?;
                    skip_ws(b, i);
                    if b.get(*i) != Some(&b':') {
                        return Err((*i, "expected ':'".into()));
                    }
                    *i += 1;
                    value(b, i)?;
                    skip_ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b'}') => {
                            *i += 1;
                            return Ok(());
                        }
                        _ => return Err((*i, "expected ',' or '}'".into())),
                    }
                }
            }
            Some(b'[') => {
                *i += 1;
                skip_ws(b, i);
                if b.get(*i) == Some(&b']') {
                    *i += 1;
                    return Ok(());
                }
                loop {
                    value(b, i)?;
                    skip_ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b']') => {
                            *i += 1;
                            return Ok(());
                        }
                        _ => return Err((*i, "expected ',' or ']'".into())),
                    }
                }
            }
            Some(b'"') => string(b, i),
            Some(b't') => literal(b, i, "true"),
            Some(b'f') => literal(b, i, "false"),
            Some(b'n') => literal(b, i, "null"),
            Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
            Some(c) => Err((*i, format!("unexpected byte {:?}", *c as char))),
        }
    }
    fn string(b: &[u8], i: &mut usize) -> Result<(), (usize, String)> {
        *i += 1; // opening quote
        while let Some(&c) = b.get(*i) {
            match c {
                b'"' => {
                    *i += 1;
                    return Ok(());
                }
                b'\\' => {
                    *i += 1;
                    match b.get(*i) {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *i += 1,
                        Some(b'u') => {
                            if b.len() < *i + 5
                                || !b[*i + 1..*i + 5].iter().all(u8::is_ascii_hexdigit)
                            {
                                return Err((*i, "bad \\u escape".into()));
                            }
                            *i += 5;
                        }
                        _ => return Err((*i, "bad escape".into())),
                    }
                }
                c if c < 0x20 => return Err((*i, "raw control character in string".into())),
                _ => *i += 1,
            }
        }
        Err((*i, "unterminated string".into()))
    }
    fn literal(b: &[u8], i: &mut usize, lit: &str) -> Result<(), (usize, String)> {
        if b[*i..].starts_with(lit.as_bytes()) {
            *i += lit.len();
            Ok(())
        } else {
            Err((*i, format!("expected {lit}")))
        }
    }
    fn number(b: &[u8], i: &mut usize) -> Result<(), (usize, String)> {
        let start = *i;
        if b.get(*i) == Some(&b'-') {
            *i += 1;
        }
        let mut digits = 0;
        while b.get(*i).is_some_and(u8::is_ascii_digit) {
            *i += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err((start, "bad number".into()));
        }
        if b.get(*i) == Some(&b'.') {
            *i += 1;
            if !b.get(*i).is_some_and(u8::is_ascii_digit) {
                return Err((*i, "bad fraction".into()));
            }
            while b.get(*i).is_some_and(u8::is_ascii_digit) {
                *i += 1;
            }
        }
        if matches!(b.get(*i), Some(b'e' | b'E')) {
            *i += 1;
            if matches!(b.get(*i), Some(b'+' | b'-')) {
                *i += 1;
            }
            if !b.get(*i).is_some_and(u8::is_ascii_digit) {
                return Err((*i, "bad exponent".into()));
            }
            while b.get(*i).is_some_and(u8::is_ascii_digit) {
                *i += 1;
            }
        }
        Ok(())
    }
    value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err((i, "trailing content after top-level value".into()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::Record;

    fn sample(kind: RecordKind, callsite: u32, span: u64, parent: u64, t_ns: u64) -> Sample {
        Sample {
            lane: 0,
            rec: Record {
                kind,
                callsite,
                span,
                parent,
                t_ns,
                value: 0,
            },
        }
    }

    fn toy_trace() -> Trace {
        // root(a,b) with a and b siblings; all on lane 0.
        Trace {
            events: vec![
                sample(RecordKind::Open, 1, 10, 0, 0),
                sample(RecordKind::Open, 2, 11, 10, 1),
                sample(RecordKind::Close, 2, 11, 0, 2),
                sample(RecordKind::Open, 3, 12, 10, 3),
                sample(RecordKind::Close, 3, 12, 0, 4),
                sample(RecordKind::Close, 1, 10, 0, 5),
            ],
            callsites: vec![("root", ""), ("b", ""), ("a", "")],
            lanes: vec![(0, "main".to_string())],
            dropped: 0,
            run: 0xabcd,
            strings: Vec::new(),
        }
    }

    #[test]
    fn validate_accepts_balanced_and_rejects_unclosed() {
        let trace = toy_trace();
        validate(&trace).expect("balanced");
        let mut bad = toy_trace();
        bad.events.pop();
        let err = validate(&bad).unwrap_err();
        assert!(err.contains("never closed"), "{err}");
    }

    #[test]
    fn canonical_forest_ignores_sibling_order() {
        let trace = toy_trace();
        assert_eq!(canonical_span_forest(&trace), "root(a,b)");
        // Same tree with siblings recorded in the other order.
        let mut swapped = toy_trace();
        swapped.events.swap(1, 3);
        swapped.events.swap(2, 4);
        assert_eq!(
            canonical_span_forest(&trace),
            canonical_span_forest(&swapped)
        );
    }

    #[test]
    fn chrome_export_is_valid_json() {
        let trace = toy_trace();
        let chrome = export_chrome(&trace);
        validate_json(&chrome).unwrap_or_else(|(at, e)| panic!("at byte {at}: {e}"));
        assert!(chrome.contains("\"ph\": \"B\""));
        assert!(chrome.contains("\"tid\": 0"));
        // Every JSONL line parses too.
        for line in export_jsonl(&trace).lines() {
            validate_json(line).unwrap_or_else(|(at, e)| panic!("at byte {at}: {e}"));
        }
    }

    #[test]
    fn json_validator_rejects_malformed() {
        assert!(validate_json("{\"a\": 1}").is_ok());
        assert!(validate_json("[1, 2.5e-3, \"x\\n\", true, null]").is_ok());
        assert!(validate_json("{\"a\": }").is_err());
        assert!(validate_json("[1, 2").is_err());
        assert!(validate_json("{} extra").is_err());
        assert!(validate_json("\"unterminated").is_err());
    }
}
