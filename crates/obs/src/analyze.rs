//! Fleet trace analysis: merged-JSONL parsing, span-tree reconstruction,
//! per-phase self-time vs wall-time, critical-path extraction, and
//! singleflight wait attribution.
//!
//! The input is the self-describing JSONL stream of
//! [`crate::export::export_jsonl`]: each process's stream starts with a
//! `meta` line carrying its run id, and merging the cold and warm processes
//! of a batch fleet is plain concatenation. Span ids are only unique within
//! one run, so every span here is keyed by `(run, span)` — correlation
//! relies on distinct per-process run ids (see [`crate::run_id`]).
//!
//! The analyzer is consumed by the `trace_report` bench bin and by the
//! fleet tests; it has no dependencies beyond this crate.

use std::collections::HashMap;

/// One reconstructed span.
#[derive(Debug)]
pub struct SpanNode {
    /// Producing run id.
    pub run: u64,
    /// Span id (unique within `run`).
    pub id: u64,
    /// Span name (resolved callsite).
    pub name: String,
    /// Recording lane (thread) within the run.
    pub lane: u32,
    /// Open timestamp, ns since the producing process's trace epoch.
    pub start_ns: u64,
    /// Close timestamp (== `start_ns` if the close record is missing).
    pub end_ns: u64,
    /// Index of the parent node in [`MergedTrace::nodes`].
    pub parent: Option<usize>,
    /// Indices of child nodes.
    pub children: Vec<usize>,
    /// Numeric annotations attached to this span, in record order.
    pub nums: Vec<(String, i64)>,
    /// String annotations attached to this span, in record order.
    pub strs: Vec<(String, String)>,
}

impl SpanNode {
    /// Span duration in nanoseconds.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// The first numeric annotation named `key`.
    pub fn num(&self, key: &str) -> Option<i64> {
        self.nums.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }

    /// The first string annotation named `key`.
    pub fn str_annot(&self, key: &str) -> Option<&str> {
        self.strs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A merged multi-process trace: the span forest across every run.
#[derive(Debug, Default)]
pub struct MergedTrace {
    /// Run ids in first-seen order.
    pub runs: Vec<u64>,
    /// Every reconstructed span.
    pub nodes: Vec<SpanNode>,
    /// Indices of root spans (no parent within their run).
    pub roots: Vec<usize>,
    /// Total event lines parsed (excluding `meta` lines).
    pub lines: usize,
}

/// One segment of the fleet critical path.
#[derive(Debug)]
pub struct PathSegment {
    /// Node index in [`MergedTrace::nodes`].
    pub node: usize,
    /// Span name.
    pub name: String,
    /// Producing run.
    pub run: u64,
    /// Span duration.
    pub dur_ns: u64,
    /// Time this segment contributes beyond its on-path child (the
    /// segment durations telescope: the `self_ns` values sum to the
    /// root's duration).
    pub self_ns: u64,
}

/// The fleet critical path: the chain of last-finishing spans from the
/// longest root down to a leaf.
#[derive(Debug, Default)]
pub struct CriticalPath {
    /// Root-to-leaf segments.
    pub segments: Vec<PathSegment>,
    /// Duration of the root segment — the fleet wall time this path
    /// explains (the segments' `self_ns` sum to exactly this).
    pub total_ns: u64,
}

/// Aggregated wall/self time for one span name ("phase").
#[derive(Debug)]
pub struct PhaseRow {
    /// Span name.
    pub name: String,
    /// Number of spans with this name.
    pub count: u64,
    /// Sum of span durations.
    pub wall_ns: u64,
    /// Sum of self times (duration minus direct children, floored at 0
    /// per span — cross-thread children can overlap their parent).
    pub self_ns: u64,
}

/// Singleflight wait time attributed to one shape digest.
#[derive(Debug)]
pub struct WaitRow {
    /// Shape digest (the `CacheKey` digest the registry keyed on).
    pub digest: u64,
    /// Number of waiting resolutions.
    pub waits: u64,
    /// Total microseconds the fleet spent blocked on this shape — the
    /// exact values observed into `batch.singleflight_wait_us`.
    pub wait_us: u64,
    /// Run that owned (synthesized) the shape, when its claim span is in
    /// the merged trace.
    pub owner_run: Option<u64>,
    /// Duration of the owner's claim span.
    pub owner_dur_ns: u64,
    /// Name of the longest span inside the owner's claim subtree — the
    /// phase the waiters were actually blocked on (e.g.
    /// `hfmin.prime_gen`).
    pub owner_hotspot: Option<String>,
}

fn str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = line[at..].trim_start();
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'r' => out.push('\r'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                c => out.push(c),
            },
            c => out.push(c),
        }
    }
    None
}

fn num_field(line: &str, key: &str) -> Option<i64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = line[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses a merged JSONL stream (one or more concatenated
/// [`crate::export::export_jsonl`] outputs) into a span forest.
///
/// # Errors
///
/// Returns a message naming the first malformed line (1-based).
pub fn parse_merged(text: &str) -> Result<MergedTrace, String> {
    let mut out = MergedTrace::default();
    // (run, span id) -> node index, for parenting and annotations.
    let mut open: HashMap<(u64, u64), usize> = HashMap::new();
    let mut run = 0u64;
    for (ix, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let lineno = ix + 1;
        let kind = str_field(line, "kind")
            .ok_or_else(|| format!("line {lineno}: missing \"kind\" field"))?;
        if kind == "meta" {
            let hex = str_field(line, "run")
                .ok_or_else(|| format!("line {lineno}: meta line missing \"run\""))?;
            run = u64::from_str_radix(&hex, 16)
                .map_err(|_| format!("line {lineno}: bad run id {hex:?}"))?;
            if !out.runs.contains(&run) {
                out.runs.push(run);
            }
            continue;
        }
        out.lines += 1;
        let name = str_field(line, "name")
            .ok_or_else(|| format!("line {lineno}: missing \"name\" field"))?;
        let t_ns = num_field(line, "t_ns")
            .ok_or_else(|| format!("line {lineno}: missing \"t_ns\" field"))? as u64;
        let span = num_field(line, "span").unwrap_or(0) as u64;
        match kind.as_str() {
            "open" => {
                let parent_id = num_field(line, "parent").unwrap_or(0) as u64;
                let parent = if parent_id == 0 {
                    None
                } else {
                    open.get(&(run, parent_id)).copied()
                };
                let node = out.nodes.len();
                out.nodes.push(SpanNode {
                    run,
                    id: span,
                    name,
                    lane: num_field(line, "lane").unwrap_or(0) as u32,
                    start_ns: t_ns,
                    end_ns: t_ns,
                    parent,
                    children: Vec::new(),
                    nums: Vec::new(),
                    strs: Vec::new(),
                });
                match parent {
                    Some(p) => out.nodes[p].children.push(node),
                    None => out.roots.push(node),
                }
                open.insert((run, span), node);
            }
            "close" => {
                if let Some(&node) = open.get(&(run, span)) {
                    out.nodes[node].end_ns = t_ns;
                }
            }
            "annot" => {
                if let Some(&node) = open.get(&(run, span)) {
                    if let Some(s) = str_field(line, "str") {
                        out.nodes[node].strs.push((name, s));
                    } else if let Some(v) = num_field(line, "value") {
                        out.nodes[node].nums.push((name, v));
                    }
                }
            }
            // Instants and metric samples don't shape the span forest.
            "instant" | "counter" => {}
            other => return Err(format!("line {lineno}: unknown record kind {other:?}")),
        }
    }
    Ok(out)
}

impl MergedTrace {
    /// Aggregates wall time and self time per span name, sorted by self
    /// time descending.
    pub fn phase_rows(&self) -> Vec<PhaseRow> {
        let mut by_name: HashMap<&str, PhaseRow> = HashMap::new();
        for node in &self.nodes {
            let kids: u64 = node
                .children
                .iter()
                .map(|&c| self.nodes[c].dur_ns())
                .sum();
            let row = by_name.entry(&node.name).or_insert_with(|| PhaseRow {
                name: node.name.clone(),
                count: 0,
                wall_ns: 0,
                self_ns: 0,
            });
            row.count += 1;
            row.wall_ns += node.dur_ns();
            row.self_ns += node.dur_ns().saturating_sub(kids);
        }
        let mut rows: Vec<PhaseRow> = by_name.into_values().collect();
        rows.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(&b.name)));
        rows
    }

    /// Extracts the fleet critical path: starting from the
    /// longest-duration root span, repeatedly descend into the child that
    /// finishes last (the child gating the parent's close). The segments'
    /// `self_ns` telescope to the root's duration, so the path's total
    /// always equals the wall time of the longest root.
    pub fn critical_path(&self) -> CriticalPath {
        let Some(&root) = self.roots.iter().max_by_key(|&&r| {
            // Deterministic across merge orders: break duration ties by
            // (run, span id).
            (self.nodes[r].dur_ns(), self.nodes[r].run, self.nodes[r].id)
        }) else {
            return CriticalPath::default();
        };
        let total_ns = self.nodes[root].dur_ns();
        let mut segments = Vec::new();
        let mut at = root;
        loop {
            let node = &self.nodes[at];
            let next = node
                .children
                .iter()
                .copied()
                .max_by_key(|&c| (self.nodes[c].end_ns, self.nodes[c].id));
            let child_dur = next.map_or(0, |c| self.nodes[c].dur_ns());
            segments.push(PathSegment {
                node: at,
                name: node.name.clone(),
                run: node.run,
                dur_ns: node.dur_ns(),
                self_ns: node.dur_ns().saturating_sub(child_dur),
            });
            match next {
                Some(c) => at = c,
                None => break,
            }
        }
        CriticalPath { segments, total_ns }
    }

    /// Attributes singleflight wait time to owning shapes: sums the
    /// `wait.us` annotations of `batch.wait` spans per `shape.digest`, and
    /// correlates each digest with the run that claimed (synthesized) it
    /// via its `batch.claim` span — including the longest span inside the
    /// claim subtree, the phase the waiters were actually blocked on.
    /// Rows sort by total wait descending.
    pub fn wait_attribution(&self) -> Vec<WaitRow> {
        let mut rows: HashMap<u64, WaitRow> = HashMap::new();
        for node in &self.nodes {
            if node.name != "batch.wait" {
                continue;
            }
            let (Some(digest), Some(us)) = (node.num("shape.digest"), node.num("wait.us")) else {
                continue;
            };
            let row = rows.entry(digest as u64).or_insert_with(|| WaitRow {
                digest: digest as u64,
                waits: 0,
                wait_us: 0,
                owner_run: None,
                owner_dur_ns: 0,
                owner_hotspot: None,
            });
            row.waits += 1;
            row.wait_us += us.max(0) as u64;
        }
        for (ix, node) in self.nodes.iter().enumerate() {
            if node.name != "batch.claim" {
                continue;
            }
            let Some(digest) = node.num("shape.digest") else {
                continue;
            };
            if let Some(row) = rows.get_mut(&(digest as u64)) {
                row.owner_run = Some(node.run);
                row.owner_dur_ns = node.dur_ns();
                row.owner_hotspot = self.hotspot_below(ix).map(|h| self.nodes[h].name.clone());
            }
        }
        let mut rows: Vec<WaitRow> = rows.into_values().collect();
        rows.sort_by(|a, b| b.wait_us.cmp(&a.wait_us).then(a.digest.cmp(&b.digest)));
        rows
    }

    /// The longest-duration strict descendant of `ix` (None for leaves).
    fn hotspot_below(&self, ix: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        let mut stack: Vec<usize> = self.nodes[ix].children.clone();
        while let Some(at) = stack.pop() {
            if best.is_none_or(|b| {
                let (cand, cur) = (&self.nodes[at], &self.nodes[b]);
                (cand.dur_ns(), cand.run, cand.id) > (cur.dur_ns(), cur.run, cur.id)
            }) {
                best = Some(at);
            }
            stack.extend_from_slice(&self.nodes[at].children);
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_stream(run: &str, base: u64) -> String {
        // root(work(slow), fast) — slow is the last-finishing grandchild.
        let mut s = String::new();
        s.push_str(&format!(
            "{{\"kind\": \"meta\", \"run\": \"{run}\", \"lanes\": 1, \"dropped\": 0}}\n"
        ));
        let ev = |kind: &str, name: &str, t: u64, span: u64, parent: u64| {
            format!(
                "{{\"kind\": \"{kind}\", \"name\": \"{name}\", \"t_ns\": {t}, \"lane\": 0, \
                 \"span\": {span}, \"parent\": {parent}, \"value\": 0}}\n"
            )
        };
        s.push_str(&ev("open", "root", base, 1, 0));
        s.push_str(&ev("open", "fast", base + 1, 2, 1));
        s.push_str(&ev("close", "fast", base + 3, 2, 0));
        s.push_str(&ev("open", "work", base + 4, 3, 1));
        s.push_str(&ev("open", "slow", base + 5, 4, 3));
        s.push_str(
            "{\"kind\": \"annot\", \"name\": \"shape.digest\", \"t_ns\": 6, \"lane\": 0, \
             \"span\": 4, \"parent\": 0, \"value\": 42}\n",
        );
        s.push_str(&ev("close", "slow", base + 90, 4, 0));
        s.push_str(&ev("close", "work", base + 95, 3, 0));
        s.push_str(&ev("close", "root", base + 100, 1, 0));
        s
    }

    #[test]
    fn merged_streams_reconstruct_per_run_forests() {
        let merged = format!("{}{}", toy_stream("00000000000000aa", 0), toy_stream("bb", 1000));
        let t = parse_merged(&merged).expect("parse");
        assert_eq!(t.runs, vec![0xaa, 0xbb]);
        assert_eq!(t.roots.len(), 2);
        // Span ids collide across runs but the forests stay separate.
        assert_eq!(t.nodes.len(), 8);
        let root0 = &t.nodes[t.roots[0]];
        assert_eq!((root0.run, root0.name.as_str(), root0.dur_ns()), (0xaa, "root", 100));
        // Annotation landed on the right (run, span).
        let slow = t
            .nodes
            .iter()
            .find(|n| n.run == 0xaa && n.name == "slow")
            .unwrap();
        assert_eq!(slow.num("shape.digest"), Some(42));
    }

    #[test]
    fn critical_path_descends_last_finishing_children() {
        let t = parse_merged(&toy_stream("01", 0)).expect("parse");
        let cp = t.critical_path();
        let names: Vec<&str> = cp.segments.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["root", "work", "slow"]);
        assert_eq!(cp.total_ns, 100);
        let self_sum: u64 = cp.segments.iter().map(|s| s.self_ns).sum();
        assert_eq!(self_sum, cp.total_ns, "self times telescope to the root");
    }

    #[test]
    fn critical_path_is_merge_order_invariant() {
        let a = toy_stream("0a", 0);
        let b = toy_stream("0b", 500);
        let ab = parse_merged(&format!("{a}{b}")).unwrap().critical_path();
        let ba = parse_merged(&format!("{b}{a}")).unwrap().critical_path();
        assert_eq!(ab.total_ns, ba.total_ns);
        let names = |cp: &CriticalPath| {
            cp.segments
                .iter()
                .map(|s| (s.run, s.name.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(names(&ab), names(&ba));
    }

    #[test]
    fn phase_rows_split_self_from_wall() {
        let t = parse_merged(&toy_stream("02", 0)).expect("parse");
        let rows = t.phase_rows();
        let row = |name: &str| rows.iter().find(|r| r.name == name).unwrap();
        assert_eq!(row("root").wall_ns, 100);
        // root self = 100 - (fast 2 + work 91) = 7.
        assert_eq!(row("root").self_ns, 7);
        assert_eq!(row("work").self_ns, 91 - 85);
        assert_eq!(row("slow").self_ns, 85);
    }

    #[test]
    fn wait_attribution_groups_by_digest_and_finds_owner_hotspot() {
        let mut s = String::from(
            "{\"kind\": \"meta\", \"run\": \"0c\", \"lanes\": 2, \"dropped\": 0}\n",
        );
        let ev = |kind: &str, name: &str, t: u64, span: u64, parent: u64| {
            format!(
                "{{\"kind\": \"{kind}\", \"name\": \"{name}\", \"t_ns\": {t}, \"lane\": 0, \
                 \"span\": {span}, \"parent\": {parent}, \"value\": 0}}\n"
            )
        };
        let annot = |name: &str, t: u64, span: u64, v: i64| {
            format!(
                "{{\"kind\": \"annot\", \"name\": \"{name}\", \"t_ns\": {t}, \"lane\": 0, \
                 \"span\": {span}, \"parent\": 0, \"value\": {v}}}\n"
            )
        };
        // Owner claims digest 7 and spends its time in prime generation.
        s.push_str(&ev("open", "batch.claim", 0, 1, 0));
        s.push_str(&annot("shape.digest", 1, 1, 7));
        s.push_str(&ev("open", "hfmin.prime_gen", 2, 2, 1));
        s.push_str(&ev("close", "hfmin.prime_gen", 80, 2, 0));
        s.push_str(&ev("close", "batch.claim", 90, 1, 0));
        // Two waiters blocked on the same digest.
        for (span, t, us) in [(3u64, 5u64, 40i64), (4, 6, 25)] {
            s.push_str(&ev("open", "batch.wait", t, span, 0));
            s.push_str(&annot("shape.digest", t + 1, span, 7));
            s.push_str(&annot("wait.us", t + 2, span, us));
            s.push_str(&ev("close", "batch.wait", t + 80, span, 0));
        }
        let t = parse_merged(&s).expect("parse");
        let rows = t.wait_attribution();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].digest, 7);
        assert_eq!(rows[0].waits, 2);
        assert_eq!(rows[0].wait_us, 65);
        assert_eq!(rows[0].owner_run, Some(0x0c));
        assert_eq!(rows[0].owner_hotspot.as_deref(), Some("hfmin.prime_gen"));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_merged("{\"nope\": 1}\n").is_err());
        assert!(parse_merged("{\"kind\": \"meta\"}\n").is_err());
        assert!(parse_merged("{\"kind\": \"wat\", \"name\": \"x\", \"t_ns\": 0}\n").is_err());
    }
}
