//! Crash flight recorder: a bounded per-thread ring of recent coarse
//! events, drained into a structured JSON dump when something goes wrong
//! (a job panics, a fault fires, a disk-cache entry is evicted).
//!
//! Unlike tracing, the recorder is always on: [`note`] costs one
//! uncontended per-thread mutex lock and one small allocation, and is only
//! called at coarse boundaries (job/shape/cache/fault transitions), so it
//! rides far below the <2% disabled-overhead budget that gates the span
//! fast path. The ring holds the last [`RING_EVENTS`] events per thread —
//! forensics for faulted runs without always-on tracing cost.
//!
//! ## Dump sink
//!
//! [`dump`] writes **only to a file or stderr, never stdout** — report
//! binaries keep their pure-JSON stdout contract. The path resolves as:
//!
//! 1. a programmatic override ([`set_flight_out`], used by tests);
//! 2. `BMBE_FLIGHT_OUT`;
//! 3. if tracing is enabled or `BMBE_FAULT` is set: derived from
//!    `BMBE_TRACE_OUT` by the usual suffix convention
//!    (`trace.json` → `trace.flight.json`);
//! 4. otherwise no sink is configured and the dump is skipped (events
//!    stay in the rings).
//!
//! A path of `-` or `/dev/stdout` is redirected to stderr. Repeated dumps
//! in one process get `.2`, `.3`, … suffixes so earlier forensics are
//! never clobbered.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Events kept per thread.
pub const RING_EVENTS: usize = 128;

/// Events kept from already-exited threads.
const RETIRED_EVENTS: usize = 1024;

/// One recorded event.
#[derive(Debug, Clone)]
pub struct FlightEvent {
    /// Nanoseconds since the trace epoch ([`crate::now_ns`]).
    pub t_ns: u64,
    /// Thread name at recording time.
    pub thread: String,
    /// Static tag naming the boundary (e.g. `"shape.phase"`).
    pub tag: &'static str,
    /// Event detail (design, digest, error text, …).
    pub detail: String,
}

struct ThreadRing {
    name: String,
    events: Mutex<VecDeque<(u64, &'static str, String)>>,
}

struct Registry {
    rings: Vec<Arc<ThreadRing>>,
    /// Recent events from threads that have exited, oldest first.
    retired: VecDeque<FlightEvent>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            rings: Vec::new(),
            retired: VecDeque::new(),
        })
    })
}

fn lock_registry() -> std::sync::MutexGuard<'static, Registry> {
    match registry().lock() {
        Ok(g) => g,
        Err(poisoned) => {
            // The recorder runs exactly when things are going wrong; a
            // panicking recorder thread must not take forensics down too.
            registry().clear_poison();
            poisoned.into_inner()
        }
    }
}

thread_local! {
    static RING: std::cell::RefCell<Option<Arc<ThreadRing>>> =
        const { std::cell::RefCell::new(None) };
}

fn retire_dead(reg: &mut Registry) {
    let mut dead: Vec<Arc<ThreadRing>> = Vec::new();
    reg.rings.retain(|ring| {
        if Arc::strong_count(ring) > 1 {
            true
        } else {
            dead.push(ring.clone());
            false
        }
    });
    for ring in dead {
        let events = match ring.events.lock() {
            Ok(mut g) => std::mem::take(&mut *g),
            Err(p) => std::mem::take(&mut *p.into_inner()),
        };
        for (t_ns, tag, detail) in events {
            reg.retired.push_back(FlightEvent {
                t_ns,
                thread: ring.name.clone(),
                tag,
                detail,
            });
        }
        while reg.retired.len() > RETIRED_EVENTS {
            reg.retired.pop_front();
        }
    }
}

fn with_ring(f: impl FnOnce(&ThreadRing)) {
    RING.with(|slot| {
        let mut slot = slot.borrow_mut();
        let ring = slot.get_or_insert_with(|| {
            let ring = Arc::new(ThreadRing {
                name: std::thread::current().name().unwrap_or("worker").to_string(),
                events: Mutex::new(VecDeque::new()),
            });
            let mut reg = lock_registry();
            // Bound the registry: fold exited workers into the retired
            // window instead of growing with every fan-out.
            retire_dead(&mut reg);
            reg.rings.push(ring.clone());
            ring
        });
        f(ring);
    });
}

/// Records one event into this thread's flight ring. `detail` is a closure
/// so callers pay for formatting only when the event is actually stored
/// (it always is today; the signature keeps the callsites cheap if a
/// gate is ever added).
pub fn note(tag: &'static str, detail: impl FnOnce() -> String) {
    let t_ns = crate::now_ns();
    let detail = detail();
    with_ring(|ring| {
        let mut events = match ring.events.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        if events.len() >= RING_EVENTS {
            events.pop_front();
        }
        events.push_back((t_ns, tag, detail));
    });
}

/// A snapshot of every thread's recent events (live rings plus the retired
/// window), sorted by timestamp. Rings are not cleared — a later dump sees
/// the same bounded window plus whatever happened since.
pub fn snapshot() -> Vec<FlightEvent> {
    let mut reg = lock_registry();
    retire_dead(&mut reg);
    let mut out: Vec<FlightEvent> = reg.retired.iter().cloned().collect();
    for ring in &reg.rings {
        let events = match ring.events.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        for (t_ns, tag, detail) in events.iter() {
            out.push(FlightEvent {
                t_ns: *t_ns,
                thread: ring.name.clone(),
                tag,
                detail: detail.clone(),
            });
        }
    }
    drop(reg);
    out.sort_by_key(|e| e.t_ns);
    out
}

/// Programmatic dump-path override (tests, embedders). `None` restores the
/// environment-driven resolution.
pub fn set_flight_out(path: Option<String>) {
    *flight_override().lock().unwrap_or_else(|p| p.into_inner()) = path;
}

fn flight_override() -> &'static Mutex<Option<String>> {
    static OVERRIDE: OnceLock<Mutex<Option<String>>> = OnceLock::new();
    OVERRIDE.get_or_init(|| Mutex::new(None))
}

/// Resolves the dump path per the module-level rules; `None` means no sink
/// is configured and dumps are skipped.
pub fn flight_out_path() -> Option<String> {
    if let Some(p) = flight_override()
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .clone()
    {
        return Some(p);
    }
    if let Ok(p) = std::env::var("BMBE_FLIGHT_OUT") {
        if !p.is_empty() {
            return Some(p);
        }
    }
    if crate::enabled() || std::env::var("BMBE_FAULT").is_ok_and(|v| !v.is_empty()) {
        return Some(crate::sibling_out_path(&crate::trace_out_path(), "flight.json"));
    }
    None
}

fn dump_seq() -> u64 {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    SEQ.fetch_add(1, Ordering::Relaxed)
}

fn escape(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders a dump document: the failure context (design, component,
/// cache_key, phase, …) plus every recent event across all threads.
pub fn render(reason: &str, context: &[(&str, String)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\"flight\": true, \"reason\": \"");
    escape(reason, &mut out);
    let _ = write!(
        out,
        "\", \"run\": \"{}\", \"t_ns\": {}, \"context\": {{",
        crate::run_id_hex(),
        crate::now_ns()
    );
    for (i, (key, value)) in context.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{key}\": \"");
        escape(value, &mut out);
        out.push('"');
    }
    out.push_str("}, \"events\": [");
    for (i, ev) in snapshot().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "\n  {{\"t_ns\": {}, \"thread\": \"",
            ev.t_ns
        );
        escape(&ev.thread, &mut out);
        out.push_str("\", \"tag\": \"");
        escape(ev.tag, &mut out);
        out.push_str("\", \"detail\": \"");
        escape(&ev.detail, &mut out);
        out.push_str("\"}");
    }
    out.push_str("\n]}\n");
    out
}

/// Dumps the flight rings as structured JSON to the configured sink (see
/// the module docs), returning the path written. No-op (returning `None`)
/// when no sink is configured; never writes to stdout; never panics — a
/// failed forensic write only logs via [`crate::vlog!`].
pub fn dump(reason: &str, context: &[(&str, String)]) -> Option<String> {
    let path = flight_out_path()?;
    let doc = render(reason, context);
    crate::counter!("flight.dumps").incr();
    if path == "-" || path == "/dev/stdout" {
        eprint!("{doc}");
        return None;
    }
    let seq = dump_seq();
    let path = if seq == 0 {
        path
    } else {
        format!("{path}.{}", seq + 1)
    };
    match std::fs::write(&path, &doc) {
        Ok(()) => {
            crate::vlog!(1, "bmbe-obs: flight recorder dump ({reason}) -> {path}");
            Some(path)
        }
        Err(e) => {
            crate::vlog!(0, "bmbe-obs: flight recorder dump to {path} failed: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn notes_are_bounded_and_dump_renders_valid_json() {
        let _l = crate::tests::global_lock();
        for i in 0..(RING_EVENTS + 16) {
            note("test.flood", || format!("event {i}"));
        }
        let mine: Vec<FlightEvent> = snapshot()
            .into_iter()
            .filter(|e| e.tag == "test.flood")
            .collect();
        assert!(mine.len() <= RING_EVENTS);
        assert!(
            mine.iter().any(|e| e.detail == format!("event {}", RING_EVENTS + 15)),
            "newest event survives"
        );
        let doc = render(
            "unit-test",
            &[
                ("design", "Stack \"quoted\"".to_string()),
                ("phase", "synth".to_string()),
            ],
        );
        crate::export::validate_json(&doc)
            .unwrap_or_else(|(at, e)| panic!("at byte {at}: {e}"));
        assert!(doc.contains("\"reason\": \"unit-test\""));
        assert!(doc.contains("\\\"quoted\\\""));
    }

    #[test]
    fn worker_events_survive_thread_exit() {
        let _l = crate::tests::global_lock();
        std::thread::scope(|s| {
            s.spawn(|| note("test.retired", || "from a dead worker".to_string()));
        });
        // Trigger a registration sweep from this thread, then snapshot.
        note("test.retired.main", || "main".to_string());
        let snap = snapshot();
        assert!(snap.iter().any(|e| e.tag == "test.retired"));
    }

    #[test]
    fn dump_skips_without_a_sink_and_honors_override() {
        let _l = crate::tests::global_lock();
        crate::set_enabled(false);
        set_flight_out(None);
        if std::env::var("BMBE_FLIGHT_OUT").is_err() && std::env::var("BMBE_FAULT").is_err() {
            assert_eq!(dump("no-sink", &[]), None);
        }
        let dir = std::env::temp_dir().join(format!("bmbe_flight_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("probe.flight.json");
        set_flight_out(Some(path.to_string_lossy().into_owned()));
        note("test.dump", || "before the failure".to_string());
        let written = dump("test-failure", &[("component", "seq_3".to_string())])
            .expect("dump with an override sink");
        let doc = std::fs::read_to_string(&written).unwrap();
        crate::export::validate_json(&doc)
            .unwrap_or_else(|(at, e)| panic!("at byte {at}: {e}"));
        assert!(doc.contains("\"component\": \"seq_3\""));
        assert!(doc.contains("before the failure"));
        set_flight_out(None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
