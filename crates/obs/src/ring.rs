//! Per-thread single-producer/single-consumer record rings.
//!
//! Every recording thread owns one [`ThreadBuffer`]: the thread pushes
//! [`Record`]s without taking any lock (a pair of monotonic atomic indices,
//! release/acquire ordering), and the collector drains from the other end.
//! Buffers register themselves in a global registry on first use; the
//! registry keeps them alive (via `Arc`) after their thread exits, so
//! records written by short-lived `bmbe-par` workers survive until the next
//! [`drain_all`]. A full ring drops the incoming record and counts the drop
//! — recording never blocks and never reallocates on the hot path.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// What one trace record means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A span opened (`span` carries the new span id, `parent` its parent).
    Open,
    /// A span closed (`span` carries the span id).
    Close,
    /// An instantaneous event (`value` is the callsite's payload).
    Instant,
    /// A metric sample (`value` is the running total / current value).
    Counter,
    /// A numeric annotation attached to a span (`span` is the annotated
    /// span id, `value` the number; the callsite names the attribute).
    AnnotateNum,
    /// A string annotation attached to a span (`span` is the annotated
    /// span id, `value` an id into the dynamic string table; the callsite
    /// names the attribute).
    AnnotateStr,
}

/// One fixed-size trace record. All payloads are numeric; the callsite id
/// resolves to the static name/category tables at export time.
#[derive(Debug, Clone, Copy)]
pub struct Record {
    /// Record kind.
    pub kind: RecordKind,
    /// Callsite id (see [`crate::Callsite`]); resolves name + category.
    pub callsite: u32,
    /// Span id for `Open`/`Close`, 0 otherwise.
    pub span: u64,
    /// Parent span id for `Open` (0 = root), 0 otherwise.
    pub parent: u64,
    /// Nanoseconds since the process trace epoch.
    pub t_ns: u64,
    /// Numeric payload (event value, metric running total).
    pub value: i64,
}

/// A drained record together with the lane (thread) that produced it.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Recording lane: a small dense id assigned per recording thread,
    /// stable for the thread's lifetime (the `tid` of the Chrome export).
    pub lane: u32,
    /// The record.
    pub rec: Record,
}

/// Ring capacity in records. Power of two; at 48 bytes per record a lane
/// costs ~3 MiB, allocated only once a thread actually records.
const RING_CAPACITY: usize = 1 << 16;

/// One thread's SPSC ring.
pub struct ThreadBuffer {
    lane: u32,
    name: String,
    slots: Box<[UnsafeCell<Record>]>,
    /// Consumer index (monotonic, not wrapped).
    head: AtomicUsize,
    /// Producer index (monotonic, not wrapped).
    tail: AtomicUsize,
    /// Records dropped because the ring was full.
    dropped: AtomicU64,
}

// SAFETY: the producer (owning thread, via thread-local) only writes slots
// in `head..head+capacity` and publishes them with a release store of
// `tail`; the consumer (the collector, serialized by the registry lock)
// only reads slots below the acquired `tail` and retires them by storing
// `head`. No slot is ever accessed by both sides at once.
unsafe impl Sync for ThreadBuffer {}
unsafe impl Send for ThreadBuffer {}

impl ThreadBuffer {
    fn new(lane: u32, name: String) -> Self {
        let zero = Record {
            kind: RecordKind::Instant,
            callsite: 0,
            span: 0,
            parent: 0,
            t_ns: 0,
            value: 0,
        };
        ThreadBuffer {
            lane,
            name,
            slots: (0..RING_CAPACITY).map(|_| UnsafeCell::new(zero)).collect(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// The lane id of this buffer.
    pub fn lane(&self) -> u32 {
        self.lane
    }

    /// Pushes one record; drops (and counts) it if the ring is full. Only
    /// the owning thread may call this.
    pub fn push(&self, rec: Record) {
        let head = self.head.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Relaxed);
        if tail - head >= RING_CAPACITY {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // SAFETY: this slot is past every index the consumer may read
        // (`>= tail` is unpublished) and the producer is single-threaded.
        unsafe { *self.slots[tail % RING_CAPACITY].get() = rec };
        self.tail.store(tail + 1, Ordering::Release);
    }

    /// Drains every published record into `out`. Only the collector (under
    /// the registry lock) may call this.
    fn drain_into(&self, out: &mut Vec<Sample>) {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Relaxed);
        for i in head..tail {
            // SAFETY: `i < tail` was published by the producer's release
            // store, and the producer will not reuse the slot until `head`
            // moves past it.
            let rec = unsafe { *self.slots[i % RING_CAPACITY].get() };
            out.push(Sample {
                lane: self.lane,
                rec,
            });
        }
        self.head.store(tail, Ordering::Release);
    }
}

struct Registry {
    buffers: Vec<Arc<ThreadBuffer>>,
    next_lane: u32,
    /// Drops accumulated from buffers already pruned from the registry.
    retired_drops: u64,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            buffers: Vec::new(),
            next_lane: 0,
            retired_drops: 0,
        })
    })
}

/// Registers a new lane for the calling thread. Called once per thread on
/// its first record (from the thread-local), never on the fast path.
pub fn register_thread() -> Arc<ThreadBuffer> {
    let name = std::thread::current()
        .name()
        .unwrap_or("worker")
        .to_string();
    let mut reg = registry().lock().expect("obs registry lock");
    let lane = reg.next_lane;
    reg.next_lane += 1;
    let buf = Arc::new(ThreadBuffer::new(lane, name));
    reg.buffers.push(buf.clone());
    buf
}

/// Everything drained from the rings: samples (unordered across lanes),
/// lane names for the exporters, and the total drop count.
#[derive(Debug, Default)]
pub struct Drained {
    /// Drained records with their lanes.
    pub samples: Vec<Sample>,
    /// `(lane, thread name)` for every lane that has ever recorded.
    pub lanes: Vec<(u32, String)>,
    /// Records dropped to full rings since the previous drain.
    pub dropped: u64,
}

/// Drains every lane's ring. Buffers whose thread has exited (no other
/// strong reference) are pruned after draining so the registry does not
/// grow with every short-lived worker fan-out.
pub fn drain_all() -> Drained {
    let mut reg = registry().lock().expect("obs registry lock");
    let mut out = Drained {
        dropped: reg.retired_drops,
        ..Drained::default()
    };
    reg.retired_drops = 0;
    for buf in &reg.buffers {
        buf.drain_into(&mut out.samples);
        out.lanes.push((buf.lane, buf.name.clone()));
        out.dropped += buf.dropped.swap(0, Ordering::Relaxed);
    }
    // A buffer is dead once only the registry holds it *and* it is empty
    // (we just drained it); its drop count was folded in above.
    reg.buffers
        .retain(|buf| Arc::strong_count(buf) > 1);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_then_drain_roundtrips() {
        let _l = crate::tests::global_lock();
        let buf = register_thread();
        for i in 0..100 {
            buf.push(Record {
                kind: RecordKind::Instant,
                callsite: 7,
                span: 0,
                parent: 0,
                t_ns: i,
                value: i as i64,
            });
        }
        let drained = drain_all();
        let mine: Vec<_> = drained
            .samples
            .iter()
            .filter(|s| s.lane == buf.lane())
            .collect();
        assert_eq!(mine.len(), 100);
        assert_eq!(mine[99].rec.value, 99);
    }

    #[test]
    fn full_ring_drops_and_counts() {
        let _l = crate::tests::global_lock();
        let buf = register_thread();
        let rec = Record {
            kind: RecordKind::Instant,
            callsite: 1,
            span: 0,
            parent: 0,
            t_ns: 0,
            value: 0,
        };
        for _ in 0..RING_CAPACITY + 10 {
            buf.push(rec);
        }
        let drained = drain_all();
        let mine = drained
            .samples
            .iter()
            .filter(|s| s.lane == buf.lane())
            .count();
        assert_eq!(mine, RING_CAPACITY);
        assert!(drained.dropped >= 10);
    }
}
