//! The metrics registry: counters, gauges, and fixed-bucket histograms.
//!
//! Metrics are identified by a static name and registered once, on first
//! use, through the `counter!`/`gauge!`/`histogram!` macros (each macro
//! expansion caches its typed handle in a `OnceLock`, so steady-state cost
//! is the atomic op itself). Cells are leaked `'static` atomics: the set of
//! distinct metrics is small and fixed by the callsites in the code, so the
//! leak is bounded and buys handle copies that are plain pointer pairs.

use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A metric name was already registered with a different type (say,
/// `counter!("x")` at one callsite and `gauge!("x")` at another).
///
/// Registration never panics on this: the infallible `register` entry
/// points log the error once via [`crate::vlog!`] and hand back a detached
/// cell (working, but excluded from [`snapshot`]), while `try_register`
/// surfaces it to callers that want to handle it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistryError {
    /// The colliding metric name.
    pub name: &'static str,
    /// The type this registration asked for.
    pub requested: &'static str,
    /// The type the name is already registered with.
    pub registered: &'static str,
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "metric {:?} already registered as a {}; this {} registration gets a detached cell",
            self.name, self.registered, self.requested
        )
    }
}

impl std::error::Error for RegistryError {}

fn report(e: RegistryError) {
    crate::vlog!(0, "bmbe-obs: {e}");
}

/// A monotonically increasing counter.
#[derive(Clone, Copy)]
pub struct Counter {
    cell: &'static AtomicU64,
}

impl Counter {
    /// Registers (or finds) the counter `name`. On a name/type collision
    /// the error is logged and a detached (unshared, unsnapshotted) cell is
    /// returned — metrics must never take the instrumented program down.
    pub fn register(name: &'static str) -> Counter {
        Counter::try_register(name).unwrap_or_else(|e| {
            report(e);
            Counter {
                cell: leak(AtomicU64::new(0)),
            }
        })
    }

    /// Registers (or finds) the counter `name`.
    ///
    /// # Errors
    ///
    /// [`RegistryError`] when `name` is already registered as a different
    /// metric type.
    pub fn try_register(name: &'static str) -> Result<Counter, RegistryError> {
        match find_or_insert(name, || Slot::Counter(leak(AtomicU64::new(0)))) {
            Slot::Counter(cell) => Ok(Counter { cell }),
            other => Err(RegistryError {
                name,
                requested: "counter",
                registered: other.kind(),
            }),
        }
    }

    /// Adds to the counter and returns the new running total.
    pub fn add(&self, n: u64) -> u64 {
        self.cell.fetch_add(n, Ordering::Relaxed) + n
    }

    /// Adds one and returns the new running total.
    pub fn incr(&self) -> u64 {
        self.add(1)
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge.
#[derive(Clone, Copy)]
pub struct Gauge {
    cell: &'static AtomicI64,
}

impl Gauge {
    /// Registers (or finds) the gauge `name`. On a name/type collision the
    /// error is logged and a detached cell is returned (see
    /// [`Counter::register`]).
    pub fn register(name: &'static str) -> Gauge {
        Gauge::try_register(name).unwrap_or_else(|e| {
            report(e);
            Gauge {
                cell: leak(AtomicI64::new(0)),
            }
        })
    }

    /// Registers (or finds) the gauge `name`.
    ///
    /// # Errors
    ///
    /// [`RegistryError`] when `name` is already registered as a different
    /// metric type.
    pub fn try_register(name: &'static str) -> Result<Gauge, RegistryError> {
        match find_or_insert(name, || Slot::Gauge(leak(AtomicI64::new(0)))) {
            Slot::Gauge(cell) => Ok(Gauge { cell }),
            other => Err(RegistryError {
                name,
                requested: "gauge",
                registered: other.kind(),
            }),
        }
    }

    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Adds a (possibly negative) delta and returns the new value.
    pub fn add(&self, delta: i64) -> i64 {
        self.cell.fetch_add(delta, Ordering::Relaxed) + delta
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A histogram over fixed, caller-supplied bucket upper bounds.
///
/// `bounds` are inclusive upper edges in ascending order; one implicit
/// overflow bucket catches everything above the last edge. Count and sum
/// are tracked alongside the buckets.
#[derive(Clone, Copy)]
pub struct Histogram {
    bounds: &'static [u64],
    /// `bounds.len() + 1` cells; last is the overflow bucket.
    buckets: &'static [AtomicU64],
    count: &'static AtomicU64,
    sum: &'static AtomicU64,
}

impl Histogram {
    /// Registers (or finds) the histogram `name` with the given bucket
    /// upper bounds (ascending). The bounds of an already-registered
    /// histogram win; callsites for one name must agree. On a name/type
    /// collision the error is logged and a detached cell is returned (see
    /// [`Counter::register`]).
    pub fn register(name: &'static str, bounds: &'static [u64]) -> Histogram {
        Histogram::try_register(name, bounds).unwrap_or_else(|e| {
            report(e);
            Histogram::detached(bounds)
        })
    }

    /// Registers (or finds) the histogram `name`.
    ///
    /// # Errors
    ///
    /// [`RegistryError`] when `name` is already registered as a different
    /// metric type.
    pub fn try_register(
        name: &'static str,
        bounds: &'static [u64],
    ) -> Result<Histogram, RegistryError> {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds ascending");
        let made = find_or_insert(name, || Slot::Histogram(Histogram::detached(bounds)));
        match made {
            Slot::Histogram(h) => Ok(h),
            other => Err(RegistryError {
                name,
                requested: "histogram",
                registered: other.kind(),
            }),
        }
    }

    fn detached(bounds: &'static [u64]) -> Histogram {
        let buckets: Vec<AtomicU64> = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            buckets: Box::leak(buckets.into_boxed_slice()),
            count: leak(AtomicU64::new(0)),
            sum: leak(AtomicU64::new(0)),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let ix = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[ix].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (the last entry is the overflow bucket).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// The bucket upper bounds this histogram was registered with.
    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }
}

#[derive(Clone, Copy)]
enum Slot {
    Counter(&'static AtomicU64),
    Gauge(&'static AtomicI64),
    Histogram(Histogram),
}

impl Slot {
    fn kind(self) -> &'static str {
        match self {
            Slot::Counter(_) => "counter",
            Slot::Gauge(_) => "gauge",
            Slot::Histogram(_) => "histogram",
        }
    }
}

fn leak<T>(v: T) -> &'static T {
    Box::leak(Box::new(v))
}

fn table() -> &'static Mutex<Vec<(&'static str, Slot)>> {
    static TABLE: OnceLock<Mutex<Vec<(&'static str, Slot)>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(Vec::new()))
}

/// Locks the registry, shrugging off poison: the table is a `Vec` of
/// `Copy` pairs mutated only by `push`, so a panicking registrant cannot
/// leave it half-written, and the metrics layer must never add a second
/// panic on top of whatever killed that thread.
fn lock_table() -> std::sync::MutexGuard<'static, Vec<(&'static str, Slot)>> {
    match table().lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            table().clear_poison();
            poisoned.into_inner()
        }
    }
}

fn find_or_insert(name: &'static str, make: impl FnOnce() -> Slot) -> Slot {
    let mut t = lock_table();
    if let Some((_, slot)) = t.iter().find(|(n, _)| *n == name) {
        return *slot;
    }
    let slot = make();
    t.push((name, slot));
    slot
}

/// A point-in-time reading of one metric.
#[derive(Debug, Clone)]
pub enum MetricSnapshot {
    /// Counter total.
    Counter {
        /// Metric name.
        name: &'static str,
        /// Running total.
        value: u64,
    },
    /// Gauge value.
    Gauge {
        /// Metric name.
        name: &'static str,
        /// Last set value.
        value: i64,
    },
    /// Histogram state.
    Histogram {
        /// Metric name.
        name: &'static str,
        /// Bucket upper bounds.
        bounds: Vec<u64>,
        /// Per-bucket counts (last = overflow).
        buckets: Vec<u64>,
        /// Observation count.
        count: u64,
        /// Observation sum.
        sum: u64,
    },
}

/// Reads every registered metric, in registration order.
pub fn snapshot() -> Vec<MetricSnapshot> {
    let t = lock_table();
    t.iter()
        .map(|(name, slot)| match slot {
            Slot::Counter(c) => MetricSnapshot::Counter {
                name,
                value: c.load(Ordering::Relaxed),
            },
            Slot::Gauge(g) => MetricSnapshot::Gauge {
                name,
                value: g.load(Ordering::Relaxed),
            },
            Slot::Histogram(h) => MetricSnapshot::Histogram {
                name,
                bounds: h.bounds.to_vec(),
                buckets: h.bucket_counts(),
                count: h.count(),
                sum: h.sum(),
            },
        })
        .collect()
}

/// Renders the snapshot as one JSON object `{"name": ...}` per metric,
/// suitable for a machine-readable summary section.
pub fn snapshot_json() -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{");
    for (i, m) in snapshot().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match m {
            MetricSnapshot::Counter { name, value } => {
                let _ = write!(out, "\"{name}\": {value}");
            }
            MetricSnapshot::Gauge { name, value } => {
                let _ = write!(out, "\"{name}\": {value}");
            }
            MetricSnapshot::Histogram {
                name,
                bounds,
                buckets,
                count,
                sum,
            } => {
                let _ = write!(
                    out,
                    "\"{name}\": {{\"count\": {count}, \"sum\": {sum}, \"bounds\": {bounds:?}, \
                     \"buckets\": {buckets:?}}}"
                );
            }
        }
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_is_shared_by_name() {
        let a = Counter::register("test.counter.shared");
        let b = Counter::register("test.counter.shared");
        a.add(3);
        b.incr();
        assert_eq!(a.get(), 4);
        assert_eq!(b.get(), 4);
    }

    #[test]
    fn gauge_is_last_value_wins() {
        let g = Gauge::register("test.gauge");
        g.set(17);
        g.set(-4);
        assert_eq!(g.get(), -4);
    }

    #[test]
    fn histogram_buckets_observations() {
        static BOUNDS: [u64; 4] = [1, 10, 100, 1000];
        let h = Histogram::register("test.histogram", &BOUNDS);
        for v in [0, 1, 2, 10, 11, 100, 5000, 1000] {
            h.observe(v);
        }
        // <=1: {0,1}; <=10: {2,10}; <=100: {11,100}; <=1000: {1000}; over: {5000}
        assert_eq!(h.bucket_counts(), vec![2, 2, 2, 1, 1]);
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 0 + 1 + 2 + 10 + 11 + 100 + 5000 + 1000);
    }

    #[test]
    fn type_collision_reports_instead_of_panicking() {
        let c = Counter::register("test.collision");
        c.add(2);
        // Same name as a gauge: typed error from try_register…
        let err = Gauge::try_register("test.collision").map(|_| ()).unwrap_err();
        assert_eq!(
            err,
            RegistryError {
                name: "test.collision",
                requested: "gauge",
                registered: "counter",
            }
        );
        // …and a working detached cell (no panic) from register.
        let g = Gauge::register("test.collision");
        g.set(7);
        assert_eq!(g.get(), 7);
        // The registered counter is untouched and still snapshotted as a
        // counter.
        assert_eq!(c.get(), 2);
        assert!(snapshot().iter().any(|m| matches!(
            m,
            MetricSnapshot::Counter {
                name: "test.collision",
                value: 2
            }
        )));
        static BOUNDS: [u64; 2] = [1, 2];
        assert!(Histogram::try_register("test.collision", &BOUNDS).is_err());
        Histogram::register("test.collision", &BOUNDS).observe(1);
    }

    #[test]
    fn registry_survives_a_poisoned_lock() {
        let c = Counter::register("test.poison.metrics");
        c.add(1);
        // Poison the table lock by panicking while holding it.
        let _ = std::panic::catch_unwind(|| {
            let _guard = table().lock().unwrap();
            panic!("poison the metrics table");
        });
        // Registration and snapshots still work.
        let again = Counter::register("test.poison.metrics");
        assert_eq!(again.get(), 1);
        assert!(!snapshot().is_empty());
    }

    #[test]
    fn snapshot_includes_registered_metrics() {
        let c = Counter::register("test.counter.snap");
        c.add(9);
        let snap = snapshot();
        assert!(snap.iter().any(|m| matches!(
            m,
            MetricSnapshot::Counter {
                name: "test.counter.snap",
                value: 9
            }
        )));
        let json = snapshot_json();
        assert!(json.contains("\"test.counter.snap\": 9"));
    }
}
