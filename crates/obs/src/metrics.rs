//! The metrics registry: counters, gauges, and fixed-bucket histograms.
//!
//! Metrics are identified by a static name and registered once, on first
//! use, through the `counter!`/`gauge!`/`histogram!` macros (each macro
//! expansion caches its typed handle in a `OnceLock`, so steady-state cost
//! is the atomic op itself). Cells are leaked `'static` atomics: the set of
//! distinct metrics is small and fixed by the callsites in the code, so the
//! leak is bounded and buys handle copies that are plain pointer pairs.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Clone, Copy)]
pub struct Counter {
    cell: &'static AtomicU64,
}

impl Counter {
    /// Registers (or finds) the counter `name`.
    pub fn register(name: &'static str) -> Counter {
        match find_or_insert(name, || Slot::Counter(leak(AtomicU64::new(0)))) {
            Slot::Counter(cell) => Counter { cell },
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Adds to the counter and returns the new running total.
    pub fn add(&self, n: u64) -> u64 {
        self.cell.fetch_add(n, Ordering::Relaxed) + n
    }

    /// Adds one and returns the new running total.
    pub fn incr(&self) -> u64 {
        self.add(1)
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge.
#[derive(Clone, Copy)]
pub struct Gauge {
    cell: &'static AtomicI64,
}

impl Gauge {
    /// Registers (or finds) the gauge `name`.
    pub fn register(name: &'static str) -> Gauge {
        match find_or_insert(name, || Slot::Gauge(leak(AtomicI64::new(0)))) {
            Slot::Gauge(cell) => Gauge { cell },
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Adds a (possibly negative) delta and returns the new value.
    pub fn add(&self, delta: i64) -> i64 {
        self.cell.fetch_add(delta, Ordering::Relaxed) + delta
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A histogram over fixed, caller-supplied bucket upper bounds.
///
/// `bounds` are inclusive upper edges in ascending order; one implicit
/// overflow bucket catches everything above the last edge. Count and sum
/// are tracked alongside the buckets.
#[derive(Clone, Copy)]
pub struct Histogram {
    bounds: &'static [u64],
    /// `bounds.len() + 1` cells; last is the overflow bucket.
    buckets: &'static [AtomicU64],
    count: &'static AtomicU64,
    sum: &'static AtomicU64,
}

impl Histogram {
    /// Registers (or finds) the histogram `name` with the given bucket
    /// upper bounds (ascending). The bounds of an already-registered
    /// histogram win; callsites for one name must agree.
    pub fn register(name: &'static str, bounds: &'static [u64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds ascending");
        let made = find_or_insert(name, || {
            let buckets: Vec<AtomicU64> = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
            Slot::Histogram(Histogram {
                bounds,
                buckets: Box::leak(buckets.into_boxed_slice()),
                count: leak(AtomicU64::new(0)),
                sum: leak(AtomicU64::new(0)),
            })
        });
        match made {
            Slot::Histogram(h) => h,
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let ix = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[ix].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (the last entry is the overflow bucket).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// The bucket upper bounds this histogram was registered with.
    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }
}

#[derive(Clone, Copy)]
enum Slot {
    Counter(&'static AtomicU64),
    Gauge(&'static AtomicI64),
    Histogram(Histogram),
}

fn leak<T>(v: T) -> &'static T {
    Box::leak(Box::new(v))
}

fn table() -> &'static Mutex<Vec<(&'static str, Slot)>> {
    static TABLE: OnceLock<Mutex<Vec<(&'static str, Slot)>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(Vec::new()))
}

fn find_or_insert(name: &'static str, make: impl FnOnce() -> Slot) -> Slot {
    let mut t = table().lock().expect("obs metrics lock");
    if let Some((_, slot)) = t.iter().find(|(n, _)| *n == name) {
        return *slot;
    }
    let slot = make();
    t.push((name, slot));
    slot
}

/// A point-in-time reading of one metric.
#[derive(Debug, Clone)]
pub enum MetricSnapshot {
    /// Counter total.
    Counter {
        /// Metric name.
        name: &'static str,
        /// Running total.
        value: u64,
    },
    /// Gauge value.
    Gauge {
        /// Metric name.
        name: &'static str,
        /// Last set value.
        value: i64,
    },
    /// Histogram state.
    Histogram {
        /// Metric name.
        name: &'static str,
        /// Bucket upper bounds.
        bounds: Vec<u64>,
        /// Per-bucket counts (last = overflow).
        buckets: Vec<u64>,
        /// Observation count.
        count: u64,
        /// Observation sum.
        sum: u64,
    },
}

/// Reads every registered metric, in registration order.
pub fn snapshot() -> Vec<MetricSnapshot> {
    let t = table().lock().expect("obs metrics lock");
    t.iter()
        .map(|(name, slot)| match slot {
            Slot::Counter(c) => MetricSnapshot::Counter {
                name,
                value: c.load(Ordering::Relaxed),
            },
            Slot::Gauge(g) => MetricSnapshot::Gauge {
                name,
                value: g.load(Ordering::Relaxed),
            },
            Slot::Histogram(h) => MetricSnapshot::Histogram {
                name,
                bounds: h.bounds.to_vec(),
                buckets: h.bucket_counts(),
                count: h.count(),
                sum: h.sum(),
            },
        })
        .collect()
}

/// Renders the snapshot as one JSON object `{"name": ...}` per metric,
/// suitable for a machine-readable summary section.
pub fn snapshot_json() -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{");
    for (i, m) in snapshot().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match m {
            MetricSnapshot::Counter { name, value } => {
                let _ = write!(out, "\"{name}\": {value}");
            }
            MetricSnapshot::Gauge { name, value } => {
                let _ = write!(out, "\"{name}\": {value}");
            }
            MetricSnapshot::Histogram {
                name,
                bounds,
                buckets,
                count,
                sum,
            } => {
                let _ = write!(
                    out,
                    "\"{name}\": {{\"count\": {count}, \"sum\": {sum}, \"bounds\": {bounds:?}, \
                     \"buckets\": {buckets:?}}}"
                );
            }
        }
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_is_shared_by_name() {
        let a = Counter::register("test.counter.shared");
        let b = Counter::register("test.counter.shared");
        a.add(3);
        b.incr();
        assert_eq!(a.get(), 4);
        assert_eq!(b.get(), 4);
    }

    #[test]
    fn gauge_is_last_value_wins() {
        let g = Gauge::register("test.gauge");
        g.set(17);
        g.set(-4);
        assert_eq!(g.get(), -4);
    }

    #[test]
    fn histogram_buckets_observations() {
        static BOUNDS: [u64; 4] = [1, 10, 100, 1000];
        let h = Histogram::register("test.histogram", &BOUNDS);
        for v in [0, 1, 2, 10, 11, 100, 5000, 1000] {
            h.observe(v);
        }
        // <=1: {0,1}; <=10: {2,10}; <=100: {11,100}; <=1000: {1000}; over: {5000}
        assert_eq!(h.bucket_counts(), vec![2, 2, 2, 1, 1]);
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 0 + 1 + 2 + 10 + 11 + 100 + 5000 + 1000);
    }

    #[test]
    fn snapshot_includes_registered_metrics() {
        let c = Counter::register("test.counter.snap");
        c.add(9);
        let snap = snapshot();
        assert!(snap.iter().any(|m| matches!(
            m,
            MetricSnapshot::Counter {
                name: "test.counter.snap",
                value: 9
            }
        )));
        let json = snapshot_json();
        assert!(json.contains("\"test.counter.snap\": 9"));
    }
}
