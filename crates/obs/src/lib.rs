#![warn(missing_docs)]
//! # bmbe-obs
//!
//! Structured observability for the bmbe back-end: span-based tracing,
//! a metrics registry, and exporters — with no external dependencies (the
//! workspace builds offline).
//!
//! ## Tracing
//!
//! [`span!`] opens a span at a static callsite and returns a guard that
//! closes it on drop; [`event!`] records an instantaneous event. Records go
//! to a per-thread single-producer ring ([`ring`]) — `bmbe-par` workers
//! record without contention — and [`flush`] collects every lane for the
//! exporters in [`export`] (JSONL and Chrome trace-event format).
//!
//! When tracing is disabled (the default), a callsite costs one relaxed
//! atomic load plus one thread-local flag read — no timestamps, no
//! allocation, no ring traffic. `bmbe-bench`'s `obs_overhead` bench pins
//! this. Enable with [`set_enabled`] or `BMBE_TRACE=1` +
//! [`init_from_env`]; `BMBE_TRACE_OUT` overrides the default `trace.json`
//! output path.
//!
//! ## Span observers
//!
//! [`with_span_observer`] installs a thread-scoped closure that receives
//! `(name, category, duration)` for every span closed on the current thread
//! while the scope is active — the hook `bmbe-flow` uses to *generate* its
//! `PhaseProfile` from the same spans the trace sees, whether or not
//! tracing is enabled.
//!
//! ## Metrics
//!
//! [`counter!`], [`gauge!`], and [`histogram!`] return typed handles into a
//! global registry ([`metrics`]); `metrics::snapshot()` reads everything
//! for a report. Counter updates additionally land in the trace (as Chrome
//! counter samples) while tracing is enabled.
//!
//! ## Verbosity
//!
//! [`vlog!`] writes human-readable progress to **stderr**, gated by a
//! global verbosity level (`BMBE_VERBOSE`, [`set_verbosity`]) — report
//! binaries keep stdout pure JSON.

pub mod analyze;
pub mod export;
pub mod metrics;
pub mod recorder;
pub mod ring;

pub use metrics::{Counter, Gauge, Histogram, MetricSnapshot, RegistryError};
pub use ring::{Record, RecordKind, Sample};

use ring::ThreadBuffer;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Global switches
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static VERBOSITY: AtomicU8 = AtomicU8::new(0);

/// Whether trace recording is enabled. The one atomic load on the disabled
/// fast path.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns trace recording on or off.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Current stderr verbosity level (0 = silent).
#[inline]
pub fn verbosity() -> u8 {
    VERBOSITY.load(Ordering::Relaxed)
}

/// Sets the stderr verbosity level.
pub fn set_verbosity(level: u8) {
    VERBOSITY.store(level, Ordering::Relaxed);
}

/// Raises verbosity to at least `level` (never lowers it).
pub fn ensure_verbosity(level: u8) {
    VERBOSITY.fetch_max(level, Ordering::Relaxed);
}

/// Reads the environment switches: `BMBE_TRACE` (non-empty, not `0` =
/// enable tracing) and `BMBE_VERBOSE` (numeric stderr verbosity).
/// Idempotent; safe to call from every binary's `main`.
pub fn init_from_env() {
    if let Ok(v) = std::env::var("BMBE_TRACE") {
        if !v.is_empty() && v != "0" {
            set_enabled(true);
        }
    }
    if let Ok(v) = std::env::var("BMBE_VERBOSE") {
        if let Ok(n) = v.trim().parse::<u8>() {
            ensure_verbosity(n);
        }
    }
}

/// The trace output path: `BMBE_TRACE_OUT`, defaulting to `trace.json`.
pub fn trace_out_path() -> String {
    std::env::var("BMBE_TRACE_OUT").unwrap_or_else(|_| "trace.json".to_string())
}

/// Derives a sibling output path from a `.json` trace path by swapping the
/// suffix (`trace.json` → `trace.flight.json` for suffix `"flight.json"`,
/// `trace.json` → `trace.jsonl` for suffix `"jsonl"`). Paths without a
/// `.json` suffix get `.{suffix}` appended.
pub fn sibling_out_path(trace_out: &str, suffix: &str) -> String {
    match trace_out.strip_suffix(".json") {
        Some(stem) => format!("{stem}.{suffix}"),
        None => format!("{trace_out}.{suffix}"),
    }
}

/// Nanoseconds since the process-wide trace epoch (the first call).
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Wall-clock nanoseconds since the Unix epoch — the "wall phase" stamped
/// into disk-cache provenance so entries from different processes order.
pub fn wall_ns() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64)
}

// ---------------------------------------------------------------------------
// Run identity
// ---------------------------------------------------------------------------

/// This process's run id (0 is never handed out). Lazily seeded on first
/// read; [`set_run_id`] overrides it (tests, coordinated fleets).
static RUN_ID: AtomicU64 = AtomicU64::new(0);

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The fleet-correlation id of this process's run. Seeded once per process
/// from `BMBE_RUN_ID` (hex) when set, otherwise mixed from the pid and the
/// wall clock; every trace stream and disk-cache entry this process
/// produces carries it.
pub fn run_id() -> u64 {
    let v = RUN_ID.load(Ordering::Relaxed);
    if v != 0 {
        return v;
    }
    let seeded = std::env::var("BMBE_RUN_ID")
        .ok()
        .and_then(|s| u64::from_str_radix(s.trim().trim_start_matches("0x"), 16).ok())
        .filter(|&id| id != 0)
        .unwrap_or_else(|| {
            let mix = splitmix64((std::process::id() as u64) ^ splitmix64(wall_ns()));
            if mix == 0 { 1 } else { mix }
        });
    match RUN_ID.compare_exchange(0, seeded, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => seeded,
        Err(current) => current,
    }
}

/// The run id rendered the way every exporter prints it: 16 lowercase hex
/// digits.
pub fn run_id_hex() -> String {
    format!("{:016x}", run_id())
}

/// Overrides the run id (0 is coerced to 1 so "unset" stays unambiguous).
/// Tests use this to make two in-process "fleet runs" distinguishable.
pub fn set_run_id(id: u64) {
    RUN_ID.store(if id == 0 { 1 } else { id }, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Dynamic strings (annotation values)
// ---------------------------------------------------------------------------

fn strings() -> &'static Mutex<Vec<String>> {
    static STRINGS: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    STRINGS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Interns a dynamic string (an annotation value such as a design name or
/// digest), returning its id. Ids start at 1; the table only grows. The set
/// of annotated values per run is small (job labels, shape digests), so the
/// linear probe under the lock is fine off the hot path.
pub fn intern(s: &str) -> u32 {
    let mut table = strings().lock().expect("obs string lock");
    if let Some(ix) = table.iter().position(|t| t == s) {
        return (ix + 1) as u32;
    }
    table.push(s.to_string());
    table.len() as u32
}

/// A snapshot of the dynamic string table: id `i + 1` → string.
pub fn string_table() -> Vec<String> {
    strings().lock().expect("obs string lock").clone()
}

// ---------------------------------------------------------------------------
// Callsites
// ---------------------------------------------------------------------------

/// A static trace callsite: the name and category are `'static`, and the
/// numeric id is assigned once, on first hit, by interning into the global
/// callsite table (exporters resolve ids back to names through it).
pub struct Callsite {
    /// Span/event name (e.g. `"synth.compile"`).
    pub name: &'static str,
    /// Category, shown as the Chrome trace `cat` field.
    pub cat: &'static str,
    id: AtomicU32,
}

impl Callsite {
    /// Declares a callsite (use through the macros).
    pub const fn new(name: &'static str, cat: &'static str) -> Self {
        Callsite {
            name,
            cat,
            id: AtomicU32::new(0),
        }
    }

    /// The interned id (registering on first use). Ids start at 1; 0 means
    /// "not yet registered".
    pub fn id(&'static self) -> u32 {
        let id = self.id.load(Ordering::Relaxed);
        if id != 0 {
            return id;
        }
        let mut table = callsites().lock().expect("obs callsite lock");
        // Re-check under the lock (two threads can race to register).
        let id = self.id.load(Ordering::Relaxed);
        if id != 0 {
            return id;
        }
        table.push((self.name, self.cat));
        let id = table.len() as u32;
        self.id.store(id, Ordering::Relaxed);
        id
    }
}

fn callsites() -> &'static Mutex<Vec<(&'static str, &'static str)>> {
    static CALLSITES: OnceLock<Mutex<Vec<(&'static str, &'static str)>>> = OnceLock::new();
    CALLSITES.get_or_init(|| Mutex::new(Vec::new()))
}

/// Resolves every registered callsite id (index `id - 1`) to
/// `(name, category)`.
pub fn callsite_table() -> Vec<(&'static str, &'static str)> {
    callsites().lock().expect("obs callsite lock").clone()
}

// ---------------------------------------------------------------------------
// Thread state: ring handle, span stack, observers
// ---------------------------------------------------------------------------

type ObserverFn = Box<dyn FnMut(&'static str, &'static str, Duration)>;

thread_local! {
    static BUFFER: RefCell<Option<Arc<ThreadBuffer>>> = const { RefCell::new(None) };
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// Depth of installed span observers; non-zero makes spans take
    /// timestamps even when tracing is off (read is a plain TLS load).
    static OBSERVER_DEPTH: Cell<u32> = const { Cell::new(0) };
    static OBSERVERS: RefCell<Vec<ObserverFn>> = const { RefCell::new(Vec::new()) };
}

fn with_buffer(f: impl FnOnce(&ThreadBuffer)) {
    BUFFER.with(|slot| {
        let mut slot = slot.borrow_mut();
        let buf = slot.get_or_insert_with(ring::register_thread);
        f(buf);
    });
}

fn next_span_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Id of the innermost span open on the current thread (0 = none). Capture
/// this before a fan-out and hand it to [`enter_with_parent`] so worker
/// spans nest under the dispatching span instead of becoming per-thread
/// roots.
pub fn current_span() -> u64 {
    SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0))
}

/// Installs `on_close` as a span observer for the duration of `f` on the
/// current thread: every span closed inside `f` reports
/// `(name, category, duration)` to it, innermost observer first. Works with
/// tracing enabled or disabled.
pub fn with_span_observer<R>(
    on_close: impl FnMut(&'static str, &'static str, Duration) + 'static,
    f: impl FnOnce() -> R,
) -> R {
    struct DepthGuard;
    impl Drop for DepthGuard {
        fn drop(&mut self) {
            OBSERVERS.with(|o| {
                o.borrow_mut().pop();
            });
            OBSERVER_DEPTH.with(|d| d.set(d.get() - 1));
        }
    }
    OBSERVERS.with(|o| o.borrow_mut().push(Box::new(on_close)));
    OBSERVER_DEPTH.with(|d| d.set(d.get() + 1));
    let _guard = DepthGuard;
    f()
}

#[inline(always)]
fn observed() -> bool {
    OBSERVER_DEPTH.with(|d| d.get()) != 0
}

// ---------------------------------------------------------------------------
// Spans and events
// ---------------------------------------------------------------------------

/// An open span; closing happens on drop. Constructed by [`enter`] /
/// [`enter_with_parent`] (usually via the [`span!`] macro).
pub struct SpanGuard {
    /// `None` on the disabled fast path — drop is then a no-op.
    live: Option<LiveSpan>,
}

struct LiveSpan {
    cs: &'static Callsite,
    id: u64,
    start: Instant,
    /// Whether records go to the ring (tracing was enabled at open).
    traced: bool,
}

/// Opens a span at `cs`, parented on the innermost open span of this
/// thread.
#[inline]
pub fn enter(cs: &'static Callsite) -> SpanGuard {
    if !enabled() && !observed() {
        return SpanGuard { live: None };
    }
    enter_slow(cs, current_span())
}

/// Opens a span with an explicit parent span id (0 = root) — the
/// cross-thread variant for fan-out workers.
#[inline]
pub fn enter_with_parent(cs: &'static Callsite, parent: u64) -> SpanGuard {
    if !enabled() && !observed() {
        return SpanGuard { live: None };
    }
    enter_slow(cs, parent)
}

fn enter_slow(cs: &'static Callsite, parent: u64) -> SpanGuard {
    let traced = enabled();
    let id = next_span_id();
    let start = Instant::now();
    if traced {
        let rec = Record {
            kind: RecordKind::Open,
            callsite: cs.id(),
            span: id,
            parent,
            t_ns: now_ns(),
            value: 0,
        };
        with_buffer(|b| b.push(rec));
    }
    SPAN_STACK.with(|s| s.borrow_mut().push(id));
    SpanGuard {
        live: Some(LiveSpan {
            cs,
            id,
            start,
            traced,
        }),
    }
}

impl SpanGuard {
    /// The span id (0 on the disabled fast path).
    pub fn id(&self) -> u64 {
        self.live.as_ref().map_or(0, |l| l.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else { return };
        let dur = live.start.elapsed();
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Scoped guards close LIFO; a mismatch means a guard was held
            // across a scope boundary — drop down to it so the stack heals.
            while let Some(top) = s.pop() {
                if top == live.id {
                    break;
                }
            }
        });
        if live.traced && enabled() {
            let rec = Record {
                kind: RecordKind::Close,
                callsite: live.cs.id(),
                span: live.id,
                parent: 0,
                t_ns: now_ns(),
                value: 0,
            };
            with_buffer(|b| b.push(rec));
        }
        if observed() {
            OBSERVERS.with(|obs| {
                for f in obs.borrow_mut().iter_mut().rev() {
                    f(live.cs.name, live.cs.cat, dur);
                }
            });
        }
    }
}

/// Records an instantaneous event with a numeric payload (no-op when
/// tracing is disabled). Use via [`event!`].
#[inline]
pub fn instant(cs: &'static Callsite, value: i64) {
    if !enabled() {
        return;
    }
    let rec = Record {
        kind: RecordKind::Instant,
        callsite: cs.id(),
        span: current_span(),
        parent: 0,
        t_ns: now_ns(),
        value,
    };
    with_buffer(|b| b.push(rec));
}

/// Records a metric sample into the trace (the running total of a counter,
/// or a gauge value) so it shows up as a Chrome counter lane. No-op when
/// tracing is disabled.
#[inline]
pub fn sample(cs: &'static Callsite, value: i64) {
    if !enabled() {
        return;
    }
    let rec = Record {
        kind: RecordKind::Counter,
        callsite: cs.id(),
        span: 0,
        parent: 0,
        t_ns: now_ns(),
        value,
    };
    with_buffer(|b| b.push(rec));
}

/// Attaches a numeric annotation to the innermost open span of this thread
/// (no-op when tracing is disabled or no span is open). Use via
/// [`annotate_num!`].
#[inline]
pub fn annotate_num(cs: &'static Callsite, value: i64) {
    if !enabled() {
        return;
    }
    let span = current_span();
    if span == 0 {
        return;
    }
    let rec = Record {
        kind: RecordKind::AnnotateNum,
        callsite: cs.id(),
        span,
        parent: 0,
        t_ns: now_ns(),
        value,
    };
    with_buffer(|b| b.push(rec));
}

/// Attaches a string annotation (interned) to the innermost open span of
/// this thread (no-op when tracing is disabled or no span is open). Use via
/// [`annotate_str!`].
#[inline]
pub fn annotate_str(cs: &'static Callsite, value: &str) {
    if !enabled() {
        return;
    }
    let span = current_span();
    if span == 0 {
        return;
    }
    let rec = Record {
        kind: RecordKind::AnnotateStr,
        callsite: cs.id(),
        span,
        parent: 0,
        t_ns: now_ns(),
        value: intern(value) as i64,
    };
    with_buffer(|b| b.push(rec));
}

/// Drains every thread's ring into one [`export::Trace`] (records sorted by
/// timestamp, callsite table attached, run id and dynamic strings stamped
/// for the self-describing exporters). Call from the collecting thread
/// after the traced work finishes.
pub fn flush() -> export::Trace {
    let drained = ring::drain_all();
    let mut trace = export::Trace::from_drained(drained, callsite_table());
    trace.run = run_id();
    trace.strings = string_table();
    trace
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Opens a span at a static callsite: `let _g = span!("name")` or
/// `span!("name", "category")`. The guard closes the span when dropped.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span!($name, "")
    };
    ($name:expr, $cat:expr) => {{
        static CS: $crate::Callsite = $crate::Callsite::new($name, $cat);
        $crate::enter(&CS)
    }};
}

/// Opens a span under an explicit parent span id (for fan-out workers):
/// `let _g = span_with_parent!("name", parent_id)`.
#[macro_export]
macro_rules! span_with_parent {
    ($name:expr, $parent:expr) => {
        $crate::span_with_parent!($name, "", $parent)
    };
    ($name:expr, $cat:expr, $parent:expr) => {{
        static CS: $crate::Callsite = $crate::Callsite::new($name, $cat);
        $crate::enter_with_parent(&CS, $parent)
    }};
}

/// Records an instantaneous event: `event!("name")` or
/// `event!("name", value)` with an `i64` payload.
#[macro_export]
macro_rules! event {
    ($name:expr) => {
        $crate::event!($name, 0)
    };
    ($name:expr, $value:expr) => {{
        static CS: $crate::Callsite = $crate::Callsite::new($name, "");
        $crate::instant(&CS, $value as i64)
    }};
}

/// Attaches a numeric annotation to the innermost open span:
/// `annotate_num!("shape.digest", digest)`. The name is the attribute key;
/// the value travels with the span through export and the analyzer.
#[macro_export]
macro_rules! annotate_num {
    ($name:expr, $value:expr) => {{
        static CS: $crate::Callsite = $crate::Callsite::new($name, "annot");
        $crate::annotate_num(&CS, $value as i64)
    }};
}

/// Attaches a string annotation to the innermost open span:
/// `annotate_str!("job.design", design_name)`.
#[macro_export]
macro_rules! annotate_str {
    ($name:expr, $value:expr) => {{
        static CS: $crate::Callsite = $crate::Callsite::new($name, "annot");
        $crate::annotate_str(&CS, $value)
    }};
}

/// Returns the [`Counter`] handle for a static metric name, registering on
/// first use. `counter!("cache.hits")`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static H: ::std::sync::OnceLock<$crate::Counter> = ::std::sync::OnceLock::new();
        *H.get_or_init(|| $crate::Counter::register($name))
    }};
}

/// Returns the [`Gauge`] handle for a static metric name.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static H: ::std::sync::OnceLock<$crate::Gauge> = ::std::sync::OnceLock::new();
        *H.get_or_init(|| $crate::Gauge::register($name))
    }};
}

/// Returns the [`Histogram`] handle for a static metric name and static
/// bucket bounds: `histogram!("sim.occupancy", &[1, 2, 4, 8])`.
#[macro_export]
macro_rules! histogram {
    ($name:expr, $bounds:expr) => {{
        static H: ::std::sync::OnceLock<$crate::Histogram> = ::std::sync::OnceLock::new();
        *H.get_or_init(|| $crate::Histogram::register($name, $bounds))
    }};
}

/// Counter update that also lands in the trace as a Chrome counter sample
/// while tracing is enabled: `trace_counter!("cache.hits", 3)`.
#[macro_export]
macro_rules! trace_counter {
    ($name:expr, $n:expr) => {{
        static CS: $crate::Callsite = $crate::Callsite::new($name, "metric");
        let total = $crate::counter!($name).add($n as u64);
        $crate::sample(&CS, total as i64);
    }};
}

/// Gauge update that also lands in the trace as a Chrome counter sample
/// while tracing is enabled: `trace_gauge!("flow.pending", 7)` sets the
/// gauge, `trace_gauge!("flow.pending", add: -1)` adjusts it.
#[macro_export]
macro_rules! trace_gauge {
    ($name:expr, add: $d:expr) => {{
        static CS: $crate::Callsite = $crate::Callsite::new($name, "metric");
        let v = $crate::gauge!($name).add($d as i64);
        $crate::sample(&CS, v);
    }};
    ($name:expr, $v:expr) => {{
        static CS: $crate::Callsite = $crate::Callsite::new($name, "metric");
        $crate::gauge!($name).set($v as i64);
        $crate::sample(&CS, $v as i64);
    }};
}

/// Verbose logging to stderr, gated on the global verbosity level:
/// `vlog!(1, "formatted {}", like_eprintln)`. Level 0 messages always
/// print.
#[macro_export]
macro_rules! vlog {
    ($level:expr, $($arg:tt)*) => {
        // checked_sub instead of `>=` so a literal level of 0 (always
        // print) doesn't trip the unused-comparison lint on unsigned
        // verbosity.
        if $crate::verbosity().checked_sub($level).is_some() {
            eprintln!($($arg)*);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// Tracing state (the enabled flag, rings, span-id counter) is
    /// process-global; tests that toggle or drain it serialize here.
    pub(crate) fn global_lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_span_is_inert() {
        let _l = global_lock();
        set_enabled(false);
        let g = span!("test.disabled");
        assert_eq!(g.id(), 0);
        drop(g);
        let trace = flush();
        assert!(!trace
            .events
            .iter()
            .any(|s| trace.name(s.rec.callsite) == "test.disabled"));
    }

    #[test]
    fn spans_nest_and_close_in_order() {
        let _l = global_lock();
        set_enabled(true);
        let outer = span!("test.outer");
        let outer_id = outer.id();
        {
            let inner = span!("test.inner");
            assert!(inner.id() > 0);
            assert_eq!(current_span(), inner.id());
        }
        assert_eq!(current_span(), outer_id);
        drop(outer);
        set_enabled(false);
        let trace = flush();
        let mine: Vec<&Sample> = trace
            .events
            .iter()
            .filter(|s| trace.name(s.rec.callsite).starts_with("test."))
            .collect();
        // Open(outer), Open(inner), Close(inner), Close(outer).
        let kinds: Vec<RecordKind> = mine.iter().map(|s| s.rec.kind).collect();
        assert_eq!(
            kinds,
            vec![
                RecordKind::Open,
                RecordKind::Open,
                RecordKind::Close,
                RecordKind::Close
            ]
        );
        assert_eq!(trace.name(mine[0].rec.callsite), "test.outer");
        assert_eq!(trace.name(mine[1].rec.callsite), "test.inner");
        assert_eq!(mine[1].rec.parent, mine[0].rec.span, "inner parents outer");
        assert_eq!(mine[2].rec.span, mine[1].rec.span, "inner closes first");
        export::validate(&trace).expect("balanced trace");
    }

    #[test]
    fn observer_sees_closes_with_durations() {
        let _l = global_lock();
        set_enabled(false);
        use std::cell::RefCell;
        use std::rc::Rc;
        let seen: Rc<RefCell<Vec<&'static str>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = seen.clone();
        with_span_observer(
            move |name, _cat, dur| {
                assert!(dur <= Duration::from_secs(1));
                sink.borrow_mut().push(name);
            },
            || {
                let _a = span!("test.obs.a");
                let _b = span!("test.obs.b");
            },
        );
        // Guards drop in reverse declaration order: b closes before a.
        assert_eq!(*seen.borrow(), vec!["test.obs.b", "test.obs.a"]);
        // Outside the scope, spans are inert again.
        let g = span!("test.obs.after");
        assert_eq!(g.id(), 0);
    }

    #[test]
    fn explicit_parent_crosses_threads() {
        let _l = global_lock();
        set_enabled(true);
        let root = span!("test.xthread.root");
        let parent = root.id();
        std::thread::scope(|s| {
            s.spawn(|| {
                let g = span_with_parent!("test.xthread.child", parent);
                assert!(g.id() != 0);
            });
        });
        drop(root);
        set_enabled(false);
        let trace = flush();
        let child = trace
            .events
            .iter()
            .find(|s| {
                trace.name(s.rec.callsite) == "test.xthread.child" && s.rec.kind == RecordKind::Open
            })
            .expect("child open record");
        assert_eq!(child.rec.parent, parent);
    }
}
