#![warn(missing_docs)]
//! # bmbe-hsnet
//!
//! The handshake-circuit netlist intermediate representation — the Rust
//! equivalent of Balsa's `.sbreeze` files. A [`netlist::Netlist`] is a graph
//! of handshake [`kind::ComponentKind`] instances wired by four-phase
//! channels; [`netlist::Netlist::partition`] performs the control/datapath
//! split that feeds the burst-mode back-end (Fig. 1 of the paper).
//!
//! # Examples
//!
//! ```
//! use bmbe_hsnet::{Netlist, ComponentKind};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut n = Netlist::new("pipeline");
//! let a = n.add_channel("activate", 0);
//! let s0 = n.add_channel("stage0", 0);
//! let s1 = n.add_channel("stage1", 0);
//! n.add_component(ComponentKind::Sequence { branches: 2 }, &[a, s0, s1])?;
//! n.expose(a);
//! n.expose(s0);
//! n.expose(s1);
//! n.validate()?;
//! assert_eq!(n.partition().control.len(), 1);
//! # Ok(())
//! # }
//! ```

pub mod kind;
pub mod levelize;
pub mod netlist;

pub use kind::{Activity, BinOp, ComponentKind, PortSpec, UnOp};
pub use levelize::{feedback_arcs, levelize, CycleError, Levelization};
pub use netlist::{
    Channel, ChannelId, Component, ComponentId, Endpoint, Netlist, NetlistError, Partition,
};
