//! The handshake-circuit netlist: components wired by channels.
//!
//! This is the equivalent of Balsa's `.sbreeze` intermediate representation:
//! the output of syntax-directed compilation and the input of the burst-mode
//! back-end.

use crate::kind::{Activity, ComponentKind, PortSpec};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a channel within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChannelId(pub u32);

/// Identifier of a component within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComponentId(pub u32);

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// One endpoint of a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// A component port, identified by component and port index.
    Port {
        /// The component.
        component: ComponentId,
        /// Index into the component's [`ComponentKind::ports`] list.
        port: usize,
    },
    /// An external port of the whole netlist.
    External,
}

/// A handshake channel.
#[derive(Debug, Clone)]
pub struct Channel {
    /// Identifier.
    pub id: ChannelId,
    /// Human-readable name (unique within the netlist).
    pub name: String,
    /// Data width in bits; 0 for pure control channels.
    pub width: u32,
    /// The endpoint that initiates handshakes, if connected.
    pub active: Option<Endpoint>,
    /// The endpoint that awaits handshakes, if connected.
    pub passive: Option<Endpoint>,
}

/// A component instance.
#[derive(Debug, Clone)]
pub struct Component {
    /// Identifier.
    pub id: ComponentId,
    /// Kind with structural parameters.
    pub kind: ComponentKind,
    /// Channel attached to each port, in [`ComponentKind::ports`] order.
    pub channels: Vec<ChannelId>,
}

/// Errors raised while building or validating a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A component was attached with the wrong number of channels.
    PortCountMismatch {
        /// The offending component kind.
        kind: String,
        /// Ports the kind declares.
        expected: usize,
        /// Channels supplied.
        got: usize,
    },
    /// A channel end was claimed twice with the same activity.
    DoubleConnection {
        /// The channel.
        channel: String,
        /// Which side was double-booked.
        activity: Activity,
    },
    /// A channel is missing one of its two ends.
    Dangling {
        /// The channel.
        channel: String,
        /// The missing side.
        activity: Activity,
    },
    /// Duplicate channel name.
    DuplicateChannel {
        /// The name.
        name: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::PortCountMismatch {
                kind,
                expected,
                got,
            } => {
                write!(f, "component {kind} expects {expected} channels, got {got}")
            }
            NetlistError::DoubleConnection { channel, activity } => {
                write!(f, "channel {channel} has two {activity} ends")
            }
            NetlistError::Dangling { channel, activity } => {
                write!(f, "channel {channel} is missing its {activity} end")
            }
            NetlistError::DuplicateChannel { name } => {
                write!(f, "duplicate channel name {name}")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

/// A netlist of handshake components.
///
/// # Examples
///
/// ```
/// use bmbe_hsnet::netlist::Netlist;
/// use bmbe_hsnet::kind::ComponentKind;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut n = Netlist::new("demo");
/// let a = n.add_channel("a", 0);
/// let b0 = n.add_channel("b0", 0);
/// let b1 = n.add_channel("b1", 0);
/// n.add_component(ComponentKind::Sequence { branches: 2 }, &[a, b0, b1])?;
/// n.expose(a); // activation comes from outside
/// n.expose(b0);
/// n.expose(b1);
/// n.validate()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    components: Vec<Component>,
    channels: Vec<Channel>,
    names: HashMap<String, ChannelId>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            components: Vec::new(),
            channels: Vec::new(),
            names: HashMap::new(),
        }
    }

    /// The netlist name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a channel; the name is made unique if already taken.
    pub fn add_channel(&mut self, name: impl Into<String>, width: u32) -> ChannelId {
        let mut name = name.into();
        if self.names.contains_key(&name) {
            let mut i = 1;
            while self.names.contains_key(&format!("{name}_{i}")) {
                i += 1;
            }
            name = format!("{name}_{i}");
        }
        let id = ChannelId(self.channels.len() as u32);
        self.names.insert(name.clone(), id);
        self.channels.push(Channel {
            id,
            name,
            width,
            active: None,
            passive: None,
        });
        id
    }

    /// Adds a component attached to the given channels (in port order).
    ///
    /// # Errors
    ///
    /// Fails when the channel count does not match the kind's port list or a
    /// channel end is already taken.
    pub fn add_component(
        &mut self,
        kind: ComponentKind,
        channels: &[ChannelId],
    ) -> Result<ComponentId, NetlistError> {
        let ports = kind.ports();
        if ports.len() != channels.len() {
            return Err(NetlistError::PortCountMismatch {
                kind: kind.mnemonic().to_string(),
                expected: ports.len(),
                got: channels.len(),
            });
        }
        let id = ComponentId(self.components.len() as u32);
        for (i, (spec, &ch)) in ports.iter().zip(channels).enumerate() {
            let endpoint = Endpoint::Port {
                component: id,
                port: i,
            };
            self.connect(ch, spec.activity, endpoint)?;
        }
        self.components.push(Component {
            id,
            kind,
            channels: channels.to_vec(),
        });
        Ok(id)
    }

    fn connect(
        &mut self,
        ch: ChannelId,
        activity: Activity,
        endpoint: Endpoint,
    ) -> Result<(), NetlistError> {
        let channel = &mut self.channels[ch.0 as usize];
        let slot = match activity {
            Activity::Active => &mut channel.active,
            Activity::Passive => &mut channel.passive,
        };
        if slot.is_some() {
            return Err(NetlistError::DoubleConnection {
                channel: channel.name.clone(),
                activity,
            });
        }
        *slot = Some(endpoint);
        Ok(())
    }

    /// Marks a channel's unconnected side(s) as external ports.
    pub fn expose(&mut self, ch: ChannelId) {
        let channel = &mut self.channels[ch.0 as usize];
        if channel.active.is_none() {
            channel.active = Some(Endpoint::External);
        }
        if channel.passive.is_none() {
            channel.passive = Some(Endpoint::External);
        }
    }

    /// All components.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// All channels.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// Looks up a channel.
    pub fn channel(&self, id: ChannelId) -> &Channel {
        &self.channels[id.0 as usize]
    }

    /// Looks up a component.
    pub fn component(&self, id: ComponentId) -> &Component {
        &self.components[id.0 as usize]
    }

    /// Looks up a channel by name.
    pub fn channel_by_name(&self, name: &str) -> Option<&Channel> {
        self.names.get(name).map(|id| self.channel(*id))
    }

    /// Channels whose either end is external.
    pub fn external_channels(&self) -> Vec<&Channel> {
        self.channels
            .iter()
            .filter(|c| {
                c.active == Some(Endpoint::External) || c.passive == Some(Endpoint::External)
            })
            .collect()
    }

    /// Checks structural sanity: every channel has exactly one active and
    /// one passive end.
    ///
    /// # Errors
    ///
    /// Returns the first dangling channel found.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for c in &self.channels {
            if c.active.is_none() {
                return Err(NetlistError::Dangling {
                    channel: c.name.clone(),
                    activity: Activity::Active,
                });
            }
            if c.passive.is_none() {
                return Err(NetlistError::Dangling {
                    channel: c.name.clone(),
                    activity: Activity::Passive,
                });
            }
        }
        Ok(())
    }

    /// Splits the netlist view into control components and datapath
    /// components (the paper's partitioning step, Fig. 1).
    pub fn partition(&self) -> Partition<'_> {
        let (control, datapath): (Vec<&Component>, Vec<&Component>) =
            self.components.iter().partition(|c| c.kind.is_control());
        // A channel is internal-control when both its endpoints are control
        // components and it is a pure control channel.
        let is_control_comp = |e: &Endpoint| match e {
            Endpoint::Port { component, .. } => {
                self.components[component.0 as usize].kind.is_control()
            }
            Endpoint::External => false,
        };
        let internal_control: Vec<&Channel> = self
            .channels
            .iter()
            .filter(|c| {
                c.width == 0
                    && c.active.as_ref().is_some_and(is_control_comp)
                    && c.passive.as_ref().is_some_and(is_control_comp)
            })
            .collect();
        Partition {
            control,
            datapath,
            internal_control,
        }
    }

    /// The port signature of a component's port.
    pub fn port_spec(&self, component: ComponentId, port: usize) -> PortSpec {
        self.components[component.0 as usize].kind.ports()[port].clone()
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "netlist {} ({} components, {} channels)",
            self.name,
            self.components.len(),
            self.channels.len()
        )?;
        for c in &self.components {
            let chans: Vec<String> = c
                .channels
                .iter()
                .map(|id| self.channel(*id).name.clone())
                .collect();
            writeln!(f, "  {} {} ({})", c.id, c.kind, chans.join(", "))?;
        }
        Ok(())
    }
}

/// The control/datapath split of a netlist.
#[derive(Debug)]
pub struct Partition<'a> {
    /// Control handshake components (optimized by the back-end).
    pub control: Vec<&'a Component>,
    /// Datapath components (template-synthesized).
    pub datapath: Vec<&'a Component>,
    /// Dataless channels internal to the control part — the clustering
    /// candidates.
    pub internal_control: Vec<&'a Channel>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_seq_netlist() -> (Netlist, ChannelId) {
        // seq1.out1 activates seq2 (the paper's basic clustering shape).
        let mut n = Netlist::new("t");
        let a = n.add_channel("a", 0);
        let x = n.add_channel("x", 0);
        let link = n.add_channel("link", 0);
        let y = n.add_channel("y", 0);
        let z = n.add_channel("z", 0);
        n.add_component(ComponentKind::Sequence { branches: 2 }, &[a, x, link])
            .unwrap();
        n.add_component(ComponentKind::Sequence { branches: 2 }, &[link, y, z])
            .unwrap();
        for ch in [a, x, y, z] {
            n.expose(ch);
        }
        (n, link)
    }

    #[test]
    fn build_and_validate() {
        let (n, _) = two_seq_netlist();
        n.validate().unwrap();
        assert_eq!(n.components().len(), 2);
        assert_eq!(n.channels().len(), 5);
    }

    #[test]
    fn dangling_channel_detected() {
        let mut n = Netlist::new("t");
        let a = n.add_channel("a", 0);
        let b = n.add_channel("b", 0);
        n.add_component(ComponentKind::Loop, &[a, b]).unwrap();
        n.expose(a);
        // b's passive side dangles
        let err = n.validate().unwrap_err();
        assert!(matches!(err, NetlistError::Dangling { .. }));
    }

    #[test]
    fn double_connection_rejected() {
        let mut n = Netlist::new("t");
        let a = n.add_channel("a", 0);
        let b = n.add_channel("b", 0);
        n.add_component(ComponentKind::Loop, &[a, b]).unwrap();
        // Another loop also claiming a's passive end.
        let err = n.add_component(ComponentKind::Loop, &[a, b]).unwrap_err();
        assert!(matches!(err, NetlistError::DoubleConnection { .. }));
    }

    #[test]
    fn port_count_checked() {
        let mut n = Netlist::new("t");
        let a = n.add_channel("a", 0);
        let err = n.add_component(ComponentKind::Loop, &[a]).unwrap_err();
        assert!(matches!(err, NetlistError::PortCountMismatch { .. }));
    }

    #[test]
    fn partition_finds_internal_control_channel() {
        let (n, link) = two_seq_netlist();
        let p = n.partition();
        assert_eq!(p.control.len(), 2);
        assert_eq!(p.datapath.len(), 0);
        assert_eq!(p.internal_control.len(), 1);
        assert_eq!(p.internal_control[0].id, link);
    }

    #[test]
    fn partition_excludes_data_channels() {
        let mut n = Netlist::new("t");
        let act = n.add_channel("act", 0);
        let pull = n.add_channel("pull", 8);
        let push = n.add_channel("push", 8);
        let wr = n.add_channel("wr", 8);
        n.add_component(ComponentKind::Fetch, &[act, pull, push])
            .unwrap();
        n.add_component(ComponentKind::Constant { value: 3, width: 8 }, &[pull])
            .unwrap();
        n.add_component(ComponentKind::Variable { width: 8, reads: 0 }, &[push])
            .unwrap();
        let _ = wr;
        n.expose(act);
        let p = n.partition();
        assert_eq!(p.control.len(), 1);
        assert_eq!(p.datapath.len(), 2);
        assert!(p.internal_control.is_empty());
    }

    #[test]
    fn channel_names_deduplicated() {
        let mut n = Netlist::new("t");
        let a = n.add_channel("a", 0);
        let a2 = n.add_channel("a", 0);
        assert_ne!(a, a2);
        assert_ne!(n.channel(a).name, n.channel(a2).name);
        assert!(n.channel_by_name("a").is_some());
        assert!(n.channel_by_name("a_1").is_some());
    }

    #[test]
    fn display_mentions_components() {
        let (n, _) = two_seq_netlist();
        let s = n.to_string();
        assert!(s.contains("seq"));
        assert!(s.contains("link"));
    }
}
