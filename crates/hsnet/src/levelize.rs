//! Deterministic DAG levelization and feedback-arc detection.
//!
//! The compiled simulation backend turns a mapped gate netlist into a
//! straight-line instruction tape; that requires a topological order and,
//! for asynchronous circuits, knowing which arcs close feedback loops (the
//! state bits a settle-to-fixpoint outer loop iterates over). Both are
//! generic graph questions, so they live here next to the netlist IR
//! rather than in the simulator.
//!
//! The algorithms are deterministic: ready nodes are processed in
//! ascending index within each level, so the same graph always yields the
//! same order — the property the compiled backend's bit-identical
//! determinism tests rest on.

use std::fmt;

/// A topological levelization of a DAG.
#[derive(Debug, Clone)]
pub struct Levelization {
    /// Node indices in topological order (sources first; within a level,
    /// ascending index).
    pub order: Vec<usize>,
    /// ASAP level per node: 0 for sources, `1 + max(level of preds)`
    /// otherwise.
    pub level: Vec<u32>,
    /// Number of distinct levels (`max(level) + 1`, 0 for an empty graph).
    pub num_levels: u32,
}

/// The graph is not acyclic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleError {
    /// The lowest-index node on some cycle.
    pub node: usize,
}

impl fmt::Display for CycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "combinational cycle through node {}", self.node)
    }
}

impl std::error::Error for CycleError {}

/// Levelizes a DAG given as a predecessor list: `preds[v]` are the nodes
/// `v` depends on. Duplicate predecessor entries are allowed (each is one
/// arc; levels only care about the set).
///
/// # Errors
///
/// [`CycleError`] naming the lowest-index node on a cycle if the graph is
/// not acyclic.
pub fn levelize(preds: &[Vec<usize>]) -> Result<Levelization, CycleError> {
    let n = preds.len();
    let mut indeg = vec![0usize; n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (v, ps) in preds.iter().enumerate() {
        for &p in ps {
            assert!(p < n, "predecessor {p} out of range for {n} nodes");
            indeg[v] += 1;
            succs[p].push(v);
        }
    }
    let mut level = vec![0u32; n];
    let mut order = Vec::with_capacity(n);
    // Kahn's algorithm, one level at a time so ties resolve by index.
    let mut frontier: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
    let mut num_levels = 0u32;
    while !frontier.is_empty() {
        frontier.sort_unstable();
        let mut next = Vec::new();
        for &v in &frontier {
            order.push(v);
            for &s in &succs[v] {
                level[s] = level[s].max(level[v] + 1);
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    next.push(s);
                }
            }
        }
        num_levels = num_levels.max(frontier.iter().map(|&v| level[v] + 1).max().unwrap_or(0));
        frontier = next;
    }
    if order.len() != n {
        let node = (0..n).find(|&v| indeg[v] > 0).expect("unplaced node");
        return Err(CycleError { node });
    }
    Ok(Levelization {
        order,
        level,
        num_levels,
    })
}

/// Finds a set of feedback arcs `(from, to)` whose removal leaves the
/// graph acyclic: the back edges of a deterministic depth-first search
/// (roots and children visited in ascending index). For an already-acyclic
/// graph this is empty; for a controller netlist with its state feedback
/// wired in, these are exactly the arcs the settle loop iterates over.
pub fn feedback_arcs(preds: &[Vec<usize>]) -> Vec<(usize, usize)> {
    let n = preds.len();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (v, ps) in preds.iter().enumerate() {
        for &p in ps {
            succs[p].push(v);
        }
    }
    for s in &mut succs {
        s.sort_unstable();
        s.dedup();
    }
    // 0 = unvisited, 1 = on stack, 2 = done.
    let mut mark = vec![0u8; n];
    let mut arcs = Vec::new();
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if mark[root] != 0 {
            continue;
        }
        mark[root] = 1;
        stack.push((root, 0));
        while let Some(&mut (v, ref mut ix)) = stack.last_mut() {
            if *ix < succs[v].len() {
                let s = succs[v][*ix];
                *ix += 1;
                match mark[s] {
                    0 => {
                        mark[s] = 1;
                        stack.push((s, 0));
                    }
                    1 => arcs.push((v, s)),
                    _ => {}
                }
            } else {
                mark[v] = 2;
                stack.pop();
            }
        }
    }
    arcs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levelizes_a_diamond() {
        // 0 -> 1, 0 -> 2, {1,2} -> 3
        let preds = vec![vec![], vec![0], vec![0], vec![1, 2]];
        let l = levelize(&preds).unwrap();
        assert_eq!(l.order, vec![0, 1, 2, 3]);
        assert_eq!(l.level, vec![0, 1, 1, 2]);
        assert_eq!(l.num_levels, 3);
    }

    #[test]
    fn order_is_deterministic_and_respects_levels() {
        // Two independent chains interleaved in index space.
        let preds = vec![vec![], vec![], vec![1], vec![0], vec![2, 3]];
        let l = levelize(&preds).unwrap();
        assert_eq!(l.order, vec![0, 1, 2, 3, 4]);
        for (pos, &v) in l.order.iter().enumerate() {
            for &p in &preds[v] {
                let ppos = l.order.iter().position(|&x| x == p).unwrap();
                assert!(ppos < pos, "pred {p} after {v}");
            }
        }
    }

    #[test]
    fn detects_a_cycle() {
        // 1 -> 2 -> 3 -> 1, with 0 acyclic on the side.
        let preds = vec![vec![], vec![3], vec![1], vec![2]];
        let err = levelize(&preds).unwrap_err();
        assert_eq!(err.node, 1);
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn feedback_arcs_break_cycles() {
        let preds = vec![vec![], vec![3, 0], vec![1], vec![2]];
        let arcs = feedback_arcs(&preds);
        assert_eq!(arcs.len(), 1);
        // Removing the reported arcs must leave an acyclic graph.
        let mut cut = preds.clone();
        for &(from, to) in &arcs {
            cut[to].retain(|&p| p != from);
        }
        assert!(levelize(&cut).is_ok());
    }

    #[test]
    fn acyclic_graph_has_no_feedback() {
        let preds = vec![vec![], vec![0], vec![0], vec![1, 2]];
        assert!(feedback_arcs(&preds).is_empty());
    }

    #[test]
    fn empty_graph() {
        let l = levelize(&[]).unwrap();
        assert!(l.order.is_empty());
        assert_eq!(l.num_levels, 0);
    }
}
