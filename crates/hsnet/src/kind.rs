//! Handshake component kinds and their port signatures.
//!
//! The vocabulary follows Balsa's component set [Bardsley 1998/2000; van
//! Berkel 1993]: control components (sequencer, concur, call, decision-wait,
//! loop, while, fork, sync, case, fetch/transferrer) and datapath components
//! (variable, functions, constants, call-mux, memory).

use std::fmt;

/// Whether an endpoint initiates handshakes (`Active`) or awaits them
/// (`Passive`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activity {
    /// The endpoint drives the request and awaits the acknowledge.
    Active,
    /// The endpoint awaits the request and drives the acknowledge.
    Passive,
}

impl Activity {
    /// The opposite activity.
    pub fn opposite(self) -> Activity {
        match self {
            Activity::Active => Activity::Passive,
            Activity::Passive => Activity::Active,
        }
    }
}

impl fmt::Display for Activity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Activity::Active => write!(f, "active"),
            Activity::Passive => write!(f, "passive"),
        }
    }
}

/// Binary datapath operations available to function components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Two's-complement addition.
    Add,
    /// Two's-complement subtraction.
    Sub,
    /// Equality comparison (1-bit result).
    Eq,
    /// Unsigned less-than (1-bit result).
    Lt,
    /// Signed less-than (1-bit result).
    SLt,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift right.
    Shr,
}

/// Unary datapath operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Identity (used to bridge pull channels).
    Id,
    /// Bitwise complement.
    Not,
    /// Two's-complement negation.
    Neg,
    /// Sign test: 1 when the (signed) value is negative.
    IsNeg,
    /// Zero test: 1 when the value is zero.
    IsZero,
}

/// The kind of a handshake component, with its structural parameters.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ComponentKind {
    /// n-way sequencer (`;`): activation, then each output in order.
    Sequence {
        /// Number of sequenced activations.
        branches: usize,
    },
    /// n-way concur (`||`): activation, all outputs in parallel.
    Concur {
        /// Number of parallel activations.
        branches: usize,
    },
    /// Repeat-forever loop.
    Loop,
    /// Guarded loop: pulls a 1-bit guard, runs the body while true.
    While,
    /// n-way call: mutually exclusive passive inputs share one active output.
    Call {
        /// Number of callers.
        inputs: usize,
    },
    /// Decision-wait: activation plus n (passive in, active out) pairs.
    DecisionWait {
        /// Number of in/out pairs.
        pairs: usize,
    },
    /// Control fork: one passive input broadcast to n active outputs.
    Fork {
        /// Number of forked outputs.
        outputs: usize,
    },
    /// n-way synchronizer (passivator family): all passive ends rendezvous.
    Sync {
        /// Number of synchronized ends.
        inputs: usize,
    },
    /// Transferrer/fetch: on activation, pull data then push it onward.
    Fetch,
    /// n-way case: pull a selector, then activate the matching branch.
    Case {
        /// Number of branches.
        branches: usize,
    },
    /// Storage variable with one write port and `reads` read ports.
    Variable {
        /// Bit width.
        width: u32,
        /// Number of read ports.
        reads: usize,
    },
    /// Two-operand combinational function (pull style).
    BinaryFunc {
        /// The operation.
        op: BinOp,
        /// Result width.
        width: u32,
    },
    /// One-operand combinational function (pull style).
    UnaryFunc {
        /// The operation.
        op: UnOp,
        /// Result width.
        width: u32,
    },
    /// Constant source (pull style).
    Constant {
        /// The value.
        value: u64,
        /// Bit width.
        width: u32,
    },
    /// Datapath call-mux: mutually exclusive pushes merged onto one output.
    CallMux {
        /// Number of writers.
        inputs: usize,
        /// Bit width.
        width: u32,
    },
    /// Word-addressed memory with per-site read and write ports. A pull on
    /// `read{i}` makes the memory pull the address on `raddr{i}` and answer
    /// with the word; a push on `write{j}` makes it pull `waddr{j}` and
    /// store.
    Memory {
        /// Number of words.
        words: usize,
        /// Bit width of a word.
        width: u32,
        /// Number of read sites.
        reads: usize,
        /// Number of write sites.
        writes: usize,
    },
    /// Control skip: acknowledges its activation immediately.
    Skip,
    /// Datapath pull-side mux: several mutually exclusive pull clients
    /// share one pulled source.
    PullMux {
        /// Number of client ports.
        clients: usize,
        /// Bit width.
        width: u32,
    },
}

/// Signature of one port of a component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortSpec {
    /// Port name (unique within the component).
    pub name: String,
    /// Handshake activity of the component at this port.
    pub activity: Activity,
    /// Whether the channel is a pure control (dataless) channel.
    pub control: bool,
}

impl PortSpec {
    fn new(name: impl Into<String>, activity: Activity, control: bool) -> Self {
        PortSpec {
            name: name.into(),
            activity,
            control,
        }
    }
}

impl ComponentKind {
    /// Whether this is a control handshake component, i.e. part of the
    /// netlist the burst-mode back-end optimizes. Datapath components are
    /// synthesized by the existing (template) path.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            ComponentKind::Sequence { .. }
                | ComponentKind::Concur { .. }
                | ComponentKind::Loop
                | ComponentKind::While
                | ComponentKind::Call { .. }
                | ComponentKind::DecisionWait { .. }
                | ComponentKind::Fork { .. }
                | ComponentKind::Sync { .. }
                | ComponentKind::Fetch
                | ComponentKind::Case { .. }
                | ComponentKind::Skip
        )
    }

    /// The ordered port signature of the component.
    pub fn ports(&self) -> Vec<PortSpec> {
        use Activity::{Active, Passive};
        match self {
            ComponentKind::Sequence { branches } | ComponentKind::Concur { branches } => {
                let mut p = vec![PortSpec::new("activate", Passive, true)];
                for i in 0..*branches {
                    p.push(PortSpec::new(format!("out{i}"), Active, true));
                }
                p
            }
            ComponentKind::Loop => vec![
                PortSpec::new("activate", Passive, true),
                PortSpec::new("out", Active, true),
            ],
            ComponentKind::While => vec![
                PortSpec::new("activate", Passive, true),
                PortSpec::new("guard", Active, false),
                PortSpec::new("out", Active, true),
            ],
            ComponentKind::Call { inputs } => {
                let mut p: Vec<PortSpec> = (0..*inputs)
                    .map(|i| PortSpec::new(format!("in{i}"), Passive, true))
                    .collect();
                p.push(PortSpec::new("out", Active, true));
                p
            }
            ComponentKind::DecisionWait { pairs } => {
                let mut p = vec![PortSpec::new("activate", Passive, true)];
                for i in 0..*pairs {
                    p.push(PortSpec::new(format!("in{i}"), Passive, true));
                }
                for i in 0..*pairs {
                    p.push(PortSpec::new(format!("out{i}"), Active, true));
                }
                p
            }
            ComponentKind::Fork { outputs } => {
                let mut p = vec![PortSpec::new("in", Passive, true)];
                for i in 0..*outputs {
                    p.push(PortSpec::new(format!("out{i}"), Active, true));
                }
                p
            }
            ComponentKind::Sync { inputs } => (0..*inputs)
                .map(|i| PortSpec::new(format!("in{i}"), Passive, true))
                .collect(),
            ComponentKind::Fetch => vec![
                PortSpec::new("activate", Passive, true),
                PortSpec::new("pull", Active, false),
                PortSpec::new("push", Active, false),
            ],
            ComponentKind::Case { branches } => {
                let mut p = vec![
                    PortSpec::new("activate", Passive, true),
                    PortSpec::new("select", Active, false),
                ];
                for i in 0..*branches {
                    p.push(PortSpec::new(format!("out{i}"), Active, true));
                }
                p
            }
            ComponentKind::Variable { reads, .. } => {
                let mut p = vec![PortSpec::new("write", Passive, false)];
                for i in 0..*reads {
                    p.push(PortSpec::new(format!("read{i}"), Passive, false));
                }
                p
            }
            ComponentKind::BinaryFunc { .. } => vec![
                PortSpec::new("result", Passive, false),
                PortSpec::new("lhs", Active, false),
                PortSpec::new("rhs", Active, false),
            ],
            ComponentKind::UnaryFunc { .. } => vec![
                PortSpec::new("result", Passive, false),
                PortSpec::new("operand", Active, false),
            ],
            ComponentKind::Constant { .. } => vec![PortSpec::new("out", Passive, false)],
            ComponentKind::CallMux { inputs, .. } => {
                let mut p: Vec<PortSpec> = (0..*inputs)
                    .map(|i| PortSpec::new(format!("in{i}"), Passive, false))
                    .collect();
                p.push(PortSpec::new("out", Active, false));
                p
            }
            ComponentKind::Memory { reads, writes, .. } => {
                let mut p = Vec::new();
                for i in 0..*reads {
                    p.push(PortSpec::new(format!("read{i}"), Passive, false));
                    p.push(PortSpec::new(format!("raddr{i}"), Active, false));
                }
                for j in 0..*writes {
                    p.push(PortSpec::new(format!("write{j}"), Passive, false));
                    p.push(PortSpec::new(format!("waddr{j}"), Active, false));
                }
                p
            }
            ComponentKind::Skip => vec![PortSpec::new("activate", Passive, true)],
            ComponentKind::PullMux { clients, .. } => {
                let mut p: Vec<PortSpec> = (0..*clients)
                    .map(|i| PortSpec::new(format!("client{i}"), Passive, false))
                    .collect();
                p.push(PortSpec::new("source", Active, false));
                p
            }
        }
    }

    /// Short mnemonic used in printed netlists.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            ComponentKind::Sequence { .. } => "seq",
            ComponentKind::Concur { .. } => "concur",
            ComponentKind::Loop => "loop",
            ComponentKind::While => "while",
            ComponentKind::Call { .. } => "call",
            ComponentKind::DecisionWait { .. } => "dw",
            ComponentKind::Fork { .. } => "fork",
            ComponentKind::Sync { .. } => "sync",
            ComponentKind::Fetch => "fetch",
            ComponentKind::Case { .. } => "case",
            ComponentKind::Variable { .. } => "var",
            ComponentKind::BinaryFunc { .. } => "binfunc",
            ComponentKind::UnaryFunc { .. } => "unfunc",
            ComponentKind::Constant { .. } => "const",
            ComponentKind::CallMux { .. } => "callmux",
            ComponentKind::Memory { .. } => "mem",
            ComponentKind::Skip => "skip",
            ComponentKind::PullMux { .. } => "pullmux",
        }
    }
}

impl fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_classification() {
        assert!(ComponentKind::Sequence { branches: 2 }.is_control());
        assert!(ComponentKind::Call { inputs: 2 }.is_control());
        assert!(ComponentKind::Fetch.is_control());
        assert!(!ComponentKind::Variable { width: 8, reads: 1 }.is_control());
        assert!(!ComponentKind::Constant { value: 0, width: 1 }.is_control());
    }

    #[test]
    fn sequencer_port_shape() {
        let ports = ComponentKind::Sequence { branches: 3 }.ports();
        assert_eq!(ports.len(), 4);
        assert_eq!(ports[0].activity, Activity::Passive);
        assert!(ports[1..].iter().all(|p| p.activity == Activity::Active));
        assert!(ports.iter().all(|p| p.control));
    }

    #[test]
    fn decision_wait_port_shape() {
        let ports = ComponentKind::DecisionWait { pairs: 2 }.ports();
        assert_eq!(ports.len(), 5);
        assert_eq!(ports[0].name, "activate");
        assert_eq!(ports[1].name, "in0");
        assert_eq!(ports[3].name, "out0");
    }

    #[test]
    fn fetch_is_control_with_data_sides() {
        let ports = ComponentKind::Fetch.ports();
        assert!(ports[0].control);
        assert!(!ports[1].control);
        assert!(!ports[2].control);
    }

    #[test]
    fn activity_opposite() {
        assert_eq!(Activity::Active.opposite(), Activity::Passive);
        assert_eq!(Activity::Passive.opposite(), Activity::Active);
    }

    #[test]
    fn port_names_unique_per_component() {
        for kind in [
            ComponentKind::Sequence { branches: 4 },
            ComponentKind::DecisionWait { pairs: 3 },
            ComponentKind::Call { inputs: 3 },
            ComponentKind::Variable { width: 8, reads: 2 },
        ] {
            let ports = kind.ports();
            let mut names: Vec<&str> = ports.iter().map(|p| p.name.as_str()).collect();
            names.sort_unstable();
            let before = names.len();
            names.dedup();
            assert_eq!(names.len(), before, "{kind:?}");
        }
    }
}
