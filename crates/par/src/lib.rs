#![warn(missing_docs)]
//! # bmbe-par
//!
//! Minimal data parallelism on `std::thread::scope`, used by the back-end
//! flow to fan synthesis jobs out across cores. The workspace builds with
//! no network access, so `rayon` is unavailable; this crate provides the
//! primitives the flow needs — an order-preserving indexed parallel map
//! with a shared work counter, and a panic-isolating variant
//! ([`par_try_map`]) that converts each worker panic into a per-item
//! [`JobError`] instead of unwinding the whole fan-out — without external
//! dependencies.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Number of worker threads to use by default: the `BMBE_THREADS`
/// environment variable when set, otherwise
/// [`std::thread::available_parallelism`] (1 when unknown).
///
/// The accepted range for `BMBE_THREADS` is a positive integer (`1..`);
/// anything else — `0`, a non-number, or an out-of-range value — is
/// rejected, falls back to the auto-detected parallelism, and emits a
/// one-time warning on stderr naming the fallback (so a typo in a CI
/// environment never silently serializes or explodes a run).
pub fn default_threads() -> usize {
    let auto = || std::thread::available_parallelism().map_or(1, |n| n.get());
    if let Ok(v) = std::env::var("BMBE_THREADS") {
        match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => return n,
            _ => {
                static WARNED: OnceLock<()> = OnceLock::new();
                WARNED.get_or_init(|| {
                    bmbe_obs::vlog!(
                        0,
                        "bmbe-par: ignoring invalid BMBE_THREADS={v:?} (expected a positive \
                         integer); falling back to available parallelism ({})",
                        auto()
                    );
                });
            }
        }
    }
    auto()
}

/// One fan-out item's failure: the worker running it panicked. The payload
/// is the stringified panic message; `label` is whatever the caller chose
/// to identify the item by (often empty — the caller usually has richer
/// context keyed by `index`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// Index of the failed item in the input slice.
    pub index: usize,
    /// Caller-supplied item label (may be empty).
    pub label: String,
    /// The panic payload, stringified (`&str`/`String` payloads verbatim,
    /// anything else a placeholder).
    pub payload: String,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.label.is_empty() {
            write!(f, "job {} panicked: {}", self.index, self.payload)
        } else {
            write!(
                f,
                "job {} ({}) panicked: {}",
                self.index, self.label, self.payload
            )
        }
    }
}

impl std::error::Error for JobError {}

/// Stringifies a panic payload (the `Box<dyn Any>` from `catch_unwind`).
fn payload_to_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

thread_local! {
    /// Non-zero while the current thread is inside a [`par_try_map`] item
    /// whose panic will be caught and reported as a [`JobError`]; the
    /// wrapped panic hook stays quiet for these so an isolated job failure
    /// does not spray backtrace noise over every sibling's output.
    static QUIET_PANICS: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// Installs (once, process-wide) a panic hook that suppresses the default
/// report for panics that [`par_try_map`] is about to catch and convert,
/// and delegates everything else to the previous hook unchanged.
fn install_quiet_hook() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if QUIET_PANICS.with(|q| q.get()) == 0 {
                previous(info);
            }
        }));
    });
}

/// Runs `f`, catching a panic and counting the scope toward the quiet
/// panic hook.
fn run_caught<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    struct Quiet;
    impl Drop for Quiet {
        fn drop(&mut self) {
            QUIET_PANICS.with(|q| q.set(q.get() - 1));
        }
    }
    QUIET_PANICS.with(|q| q.set(q.get() + 1));
    let _guard = Quiet;
    panic::catch_unwind(AssertUnwindSafe(f)).map_err(payload_to_string)
}

/// Runs `f` on the calling thread, converting a panic into
/// `Err(stringified payload)` instead of unwinding — the single-job
/// counterpart of [`par_try_map`], sharing its quiet panic hook (the
/// caught panic does not print the default report). Used by the flow for
/// isolated retries outside a fan-out.
pub fn catch_job<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    install_quiet_hook();
    run_caught(f)
}

/// Applies `f` to every item, using up to `threads` worker threads, and
/// returns the results in item order. Items are handed out through a shared
/// atomic counter, so long jobs don't leave workers idle behind a static
/// partition. With `threads <= 1` (or one item) the map runs inline on the
/// caller's thread — the serial and parallel paths execute the same `f` in
/// a deterministic output order either way.
///
/// # Panics
///
/// Re-raises the first worker panic on the calling thread. Use
/// [`par_try_map`] when one item's failure must not take down the rest of
/// the fan-out.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.min(n).max(1);
    if workers == 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
    let worker = || {
        let mut local = Vec::new();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                return local;
            }
            local.push((i, f(i, &items[i])));
        }
    };
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers).map(|_| scope.spawn(&worker)).collect();
        for handle in handles {
            match handle.join() {
                Ok(local) => buckets.push(local),
                Err(payload) => panic::resume_unwind(payload),
            }
        }
    });
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in buckets.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index computed exactly once"))
        .collect()
}

/// Panic-isolating [`par_map`]: applies `f` to every item across up to
/// `threads` workers, catching each item's panic individually. A panicking
/// item yields `Err(JobError)` in its output slot — carrying the item
/// index, the caller's `label(index, item)`, and the stringified panic
/// payload — and every other item still runs to completion. Results come
/// back in item order, and the set of `Err` slots is identical whatever
/// the thread count, because failure is decided per item, not per worker.
///
/// While an item runs, the default panic report is suppressed on that
/// thread (the panic is *handled*, not fatal), so one poisoned job does
/// not spray a backtrace over the siblings' output; panics outside any
/// `par_try_map` item report exactly as before.
pub fn par_try_map<T, R, F, L>(
    items: &[T],
    threads: usize,
    label: L,
    f: F,
) -> Vec<Result<R, JobError>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
    L: Fn(usize, &T) -> String + Sync,
{
    install_quiet_hook();
    let run_one = |i: usize, item: &T| {
        run_caught(|| f(i, item)).map_err(|payload| JobError {
            index: i,
            label: label(i, item),
            payload,
        })
    };
    let n = items.len();
    let workers = threads.min(n).max(1);
    if workers == 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| run_one(i, item))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, Result<R, JobError>)>> = Vec::with_capacity(workers);
    let worker = || {
        let mut local = Vec::new();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                return local;
            }
            local.push((i, run_one(i, &items[i])));
        }
    };
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers).map(|_| scope.spawn(&worker)).collect();
        for handle in handles {
            match handle.join() {
                Ok(local) => buckets.push(local),
                // `f` panics are caught inside the worker; reaching here
                // means the scaffolding itself failed — re-raise.
                Err(payload) => panic::resume_unwind(payload),
            }
        }
    });
    let mut slots: Vec<Option<Result<R, JobError>>> = (0..n).map(|_| None).collect();
    for (i, r) in buckets.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index computed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = par_map(&items, 8, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_path_matches_parallel() {
        let items: Vec<u64> = (0..100).collect();
        let serial = par_map(&items, 1, |_, &x| x * x);
        let parallel = par_map(&items, 4, |_, &x| x * x);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = par_map(&[] as &[u32], 4, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            par_map(&[1u32, 2, 3, 4], 2, |_, &x| {
                if x == 3 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn try_map_isolates_panics_and_completes_siblings() {
        let items: Vec<u32> = (0..64).collect();
        for threads in [1, 4] {
            let out = par_try_map(
                &items,
                threads,
                |_, &x| format!("item-{x}"),
                |_, &x| {
                    if x % 7 == 3 {
                        panic!("poisoned {x}");
                    }
                    x * 10
                },
            );
            assert_eq!(out.len(), items.len());
            for (i, slot) in out.iter().enumerate() {
                if i % 7 == 3 {
                    let e = slot.as_ref().expect_err("item must fail");
                    assert_eq!(e.index, i);
                    assert_eq!(e.label, format!("item-{i}"));
                    assert_eq!(e.payload, format!("poisoned {i}"));
                } else {
                    assert_eq!(*slot.as_ref().expect("item must succeed"), i as u32 * 10);
                }
            }
        }
    }

    #[test]
    fn try_map_failure_set_is_thread_count_independent() {
        let items: Vec<u32> = (0..32).collect();
        let failing = |out: &[Result<u32, JobError>]| -> Vec<usize> {
            out.iter()
                .enumerate()
                .filter_map(|(i, r)| r.is_err().then_some(i))
                .collect()
        };
        let serial = par_try_map(&items, 1, |_, _| String::new(), |_, &x| {
            if x == 5 || x == 20 {
                panic!("bad");
            }
            x
        });
        let fanned = par_try_map(&items, 4, |_, _| String::new(), |_, &x| {
            if x == 5 || x == 20 {
                panic!("bad");
            }
            x
        });
        assert_eq!(failing(&serial), failing(&fanned));
        assert_eq!(failing(&serial), vec![5, 20]);
    }

    #[test]
    fn try_map_non_string_payload_is_reported() {
        let out = par_try_map(&[0u8], 1, |_, _| String::new(), |_, _| {
            std::panic::panic_any(42i32);
        });
        assert_eq!(out[0].as_ref().unwrap_err().payload, "non-string panic payload");
    }

    #[test]
    fn panics_outside_try_map_still_report() {
        // The quiet hook must only silence panics par_try_map catches.
        install_quiet_hook();
        let caught = std::panic::catch_unwind(|| panic!("visible"));
        assert!(caught.is_err());
    }
}
