#![warn(missing_docs)]
//! # bmbe-par
//!
//! Minimal data parallelism on `std::thread::scope`, used by the back-end
//! flow to fan synthesis jobs out across cores. The workspace builds with
//! no network access, so `rayon` is unavailable; this crate provides the
//! one primitive the flow needs — an order-preserving indexed parallel map
//! with a shared work counter — without external dependencies.

use std::panic;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use by default: the `BMBE_THREADS`
/// environment variable when set to a positive integer, otherwise
/// [`std::thread::available_parallelism`] (1 when unknown).
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("BMBE_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Applies `f` to every item, using up to `threads` worker threads, and
/// returns the results in item order. Items are handed out through a shared
/// atomic counter, so long jobs don't leave workers idle behind a static
/// partition. With `threads <= 1` (or one item) the map runs inline on the
/// caller's thread — the serial and parallel paths execute the same `f` in
/// a deterministic output order either way.
///
/// # Panics
///
/// Re-raises the first worker panic on the calling thread.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.min(n).max(1);
    if workers == 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
    let worker = || {
        let mut local = Vec::new();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                return local;
            }
            local.push((i, f(i, &items[i])));
        }
    };
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers).map(|_| scope.spawn(&worker)).collect();
        for handle in handles {
            match handle.join() {
                Ok(local) => buckets.push(local),
                Err(payload) => panic::resume_unwind(payload),
            }
        }
    });
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in buckets.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index computed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = par_map(&items, 8, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_path_matches_parallel() {
        let items: Vec<u64> = (0..100).collect();
        let serial = par_map(&items, 1, |_, &x| x * x);
        let parallel = par_map(&items, 4, |_, &x| x * x);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = par_map(&[] as &[u32], 4, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            par_map(&[1u32, 2, 3, 4], 2, |_, &x| {
                if x == 3 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(result.is_err());
    }
}
