//! Receptive trace structures as finite automata.
//!
//! Follows Dill's trace theory [Dill 1989]: a module is a prefix-closed,
//! receptive trace structure over an alphabet partitioned into inputs and
//! outputs. We represent the structure as a deterministic automaton with an
//! implicit failure state: an input symbol with no defined transition leads
//! to failure (the module "chokes"); an output symbol with no defined
//! transition simply cannot be produced.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// Direction of a symbol relative to the module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dir {
    /// The environment produces this symbol.
    Input,
    /// The module produces this symbol.
    Output,
}

impl Dir {
    /// The mirrored direction.
    pub fn flip(self) -> Dir {
        match self {
            Dir::Input => Dir::Output,
            Dir::Output => Dir::Input,
        }
    }
}

/// Result of taking a symbol from a state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    To(usize),
    Failure,
}

/// Errors raised by trace-structure operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// Both composed modules drive the same symbol.
    OutputConflict {
        /// The doubly-driven symbol.
        symbol: String,
    },
    /// Tried to hide a symbol that is not an output.
    HideNonOutput {
        /// The offending symbol.
        symbol: String,
    },
    /// Conformance requires identical alphabets (names and directions).
    AlphabetMismatch {
        /// Description of the difference.
        detail: String,
    },
    /// A referenced symbol does not exist.
    UnknownSymbol {
        /// The name.
        symbol: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::OutputConflict { symbol } => {
                write!(f, "symbol {symbol} is an output of both composed modules")
            }
            TraceError::HideNonOutput { symbol } => {
                write!(f, "cannot hide non-output symbol {symbol}")
            }
            TraceError::AlphabetMismatch { detail } => write!(f, "alphabet mismatch: {detail}"),
            TraceError::UnknownSymbol { symbol } => write!(f, "unknown symbol {symbol}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// A receptive trace structure.
///
/// # Examples
///
/// ```
/// use bmbe_trace::automaton::{Dir, TraceStructure};
///
/// // A wire: receives `a`, then emits `b`, repeatedly.
/// let mut w = TraceStructure::new();
/// let a = w.add_symbol("a", Dir::Input);
/// let b = w.add_symbol("b", Dir::Output);
/// let s0 = w.add_state();
/// let s1 = w.add_state();
/// w.set_initial(s0);
/// w.add_transition(s0, a, s1);
/// w.add_transition(s1, b, s0);
/// assert!(w.accepts(&["a", "b", "a"]).unwrap());
/// assert!(!w.accepts(&["b"]).unwrap()); // cannot produce b before a
/// ```
#[derive(Debug, Clone)]
pub struct TraceStructure {
    symbols: Vec<(String, Dir)>,
    by_name: HashMap<String, usize>,
    num_states: usize,
    initial: usize,
    delta: HashMap<(usize, usize), usize>,
}

impl Default for TraceStructure {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceStructure {
    /// Creates an empty structure with a single initial state.
    pub fn new() -> Self {
        TraceStructure {
            symbols: Vec::new(),
            by_name: HashMap::new(),
            num_states: 1,
            initial: 0,
            delta: HashMap::new(),
        }
    }

    /// Adds (or finds) a symbol; returns its index.
    ///
    /// # Panics
    ///
    /// Panics if the symbol exists with a different direction.
    pub fn add_symbol(&mut self, name: impl Into<String>, dir: Dir) -> usize {
        let name = name.into();
        if let Some(&i) = self.by_name.get(&name) {
            assert_eq!(
                self.symbols[i].1, dir,
                "symbol {name} re-added with different direction"
            );
            return i;
        }
        let i = self.symbols.len();
        self.by_name.insert(name.clone(), i);
        self.symbols.push((name, dir));
        i
    }

    /// Adds a fresh state; returns its index.
    pub fn add_state(&mut self) -> usize {
        self.num_states += 1;
        self.num_states - 1
    }

    /// Sets the initial state.
    pub fn set_initial(&mut self, s: usize) {
        assert!(s < self.num_states);
        self.initial = s;
    }

    /// Defines the transition `from --symbol--> to`.
    pub fn add_transition(&mut self, from: usize, symbol: usize, to: usize) {
        assert!(from < self.num_states && to < self.num_states && symbol < self.symbols.len());
        self.delta.insert((from, symbol), to);
    }

    /// The alphabet as `(name, direction)` pairs.
    pub fn symbols(&self) -> &[(String, Dir)] {
        &self.symbols
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// The initial state.
    pub fn initial(&self) -> usize {
        self.initial
    }

    /// Looks up a symbol index by name.
    pub fn symbol_index(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// Number of defined transitions.
    pub fn num_transitions(&self) -> usize {
        self.delta.len()
    }

    /// Copies every outgoing transition of `from_state` onto `onto`
    /// (used to alias a goto source with its label state when building
    /// automata from linear expansions). Existing transitions of `onto`
    /// are kept.
    pub fn copy_outgoing(&mut self, from_state: usize, onto: usize) {
        let copies: Vec<(usize, usize)> = self
            .delta
            .iter()
            .filter(|((s, _), _)| *s == from_state)
            .map(|((_, sym), t)| (*sym, *t))
            .collect();
        for (sym, t) in copies {
            self.delta.entry((onto, sym)).or_insert(t);
        }
    }

    fn step(&self, state: usize, symbol: usize) -> Step {
        match self.delta.get(&(state, symbol)) {
            Some(&s) => Step::To(s),
            None => Step::Failure,
        }
    }

    /// Whether the symbol can occur at the state: inputs always can
    /// (receptiveness), outputs only when defined.
    fn possible(&self, state: usize, symbol: usize) -> bool {
        match self.symbols[symbol].1 {
            Dir::Input => true,
            Dir::Output => self.delta.contains_key(&(state, symbol)),
        }
    }

    /// Whether a trace (by symbol names) is a success trace of the module.
    ///
    /// A trace that chokes on an input is a failure; a trace containing an
    /// output the module cannot produce is simply not a trace (returns
    /// `false` as well).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnknownSymbol`] for names outside the alphabet.
    pub fn accepts(&self, trace: &[&str]) -> Result<bool, TraceError> {
        let mut state = self.initial;
        for name in trace {
            let sym = self
                .symbol_index(name)
                .ok_or_else(|| TraceError::UnknownSymbol {
                    symbol: (*name).to_string(),
                })?;
            if !self.possible(state, sym) {
                return Ok(false);
            }
            match self.step(state, sym) {
                Step::To(s) => state = s,
                Step::Failure => return Ok(false),
            }
        }
        Ok(true)
    }

    /// The mirror: inputs and outputs exchanged.
    pub fn mirror(&self) -> TraceStructure {
        let mut m = self.clone();
        for (_, dir) in &mut m.symbols {
            *dir = dir.flip();
        }
        m
    }

    /// Dill composition of two modules.
    ///
    /// Shared symbols synchronize; a symbol driven by one module and
    /// received by the other becomes an output of the composite. A failure
    /// occurs when a produced or environment-supplied symbol chokes either
    /// receiver.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::OutputConflict`] when both modules drive the
    /// same symbol.
    pub fn compose(&self, other: &TraceStructure) -> Result<Composite, TraceError> {
        // Build the composite alphabet.
        let mut names: Vec<String> = Vec::new();
        let mut dirs: Vec<Dir> = Vec::new();
        let mut in_a: Vec<Option<usize>> = Vec::new();
        let mut in_b: Vec<Option<usize>> = Vec::new();
        let mut seen: BTreeMap<String, usize> = BTreeMap::new();
        for (name, dir) in &self.symbols {
            let i = names.len();
            seen.insert(name.clone(), i);
            names.push(name.clone());
            dirs.push(*dir);
            in_a.push(self.by_name.get(name).copied());
            in_b.push(None);
        }
        for (name, dir) in &other.symbols {
            match seen.get(name) {
                Some(&i) => {
                    in_b[i] = other.by_name.get(name).copied();
                    let da = dirs[i];
                    match (da, dir) {
                        (Dir::Output, Dir::Output) => {
                            return Err(TraceError::OutputConflict {
                                symbol: name.clone(),
                            })
                        }
                        (Dir::Output, Dir::Input) | (Dir::Input, Dir::Output) => {
                            dirs[i] = Dir::Output
                        }
                        (Dir::Input, Dir::Input) => {}
                    }
                }
                None => {
                    let i = names.len();
                    seen.insert(name.clone(), i);
                    names.push(name.clone());
                    dirs.push(*dir);
                    in_a.push(None);
                    in_b.push(other.by_name.get(name).copied());
                }
            }
        }
        // Explore the product.
        let mut result = TraceStructure::new();
        for (n, d) in names.iter().zip(&dirs) {
            result.add_symbol(n.clone(), *d);
        }
        let mut failure_reachable = false;
        let mut index: HashMap<(usize, usize), usize> = HashMap::new();
        index.insert((self.initial, other.initial), 0);
        let mut queue = vec![(self.initial, other.initial)];
        while let Some((sa, sb)) = queue.pop() {
            let from = index[&(sa, sb)];
            for sym in 0..names.len() {
                let a_sym = in_a[sym];
                let b_sym = in_b[sym];
                // Can this symbol occur here?
                let producible = match dirs[sym] {
                    Dir::Input => true,
                    Dir::Output => {
                        // Some party must be able to output it.
                        let a_out = a_sym.is_some_and(|s| {
                            self.symbols[s].1 == Dir::Output && self.possible(sa, s)
                        });
                        let b_out = b_sym.is_some_and(|s| {
                            other.symbols[s].1 == Dir::Output && other.possible(sb, s)
                        });
                        a_out || b_out
                    }
                };
                if !producible {
                    continue;
                }
                // Both participants step; a choked receiver is a failure.
                let na = match a_sym {
                    Some(s) => match self.step(sa, s) {
                        Step::To(t) => Some(t),
                        Step::Failure => None,
                    },
                    None => Some(sa),
                };
                let nb = match b_sym {
                    Some(s) => match other.step(sb, s) {
                        Step::To(t) => Some(t),
                        Step::Failure => None,
                    },
                    None => Some(sb),
                };
                match (na, nb) {
                    (Some(na), Some(nb)) => {
                        let next = *index.entry((na, nb)).or_insert_with(|| {
                            queue.push((na, nb));
                            result.add_state()
                        });
                        result.add_transition(from, sym, next);
                    }
                    _ => {
                        // A choke. For a composite *input* the transition is
                        // simply left undefined: receptive semantics makes
                        // that an implicit failure, preserved for later
                        // compositions. A choke on a *module-produced*
                        // symbol is a failure no environment choice at this
                        // step can undo; record it in the flag (this is the
                        // exact condition the mirror-based conformance check
                        // needs, where every symbol is an output).
                        if dirs[sym] == Dir::Output {
                            failure_reachable = true;
                        }
                    }
                }
            }
        }
        Ok(Composite {
            structure: result,
            failure_reachable,
        })
    }

    /// Hides output symbols, determinizing the result.
    ///
    /// Hidden symbols become internal moves (ε). The subset construction
    /// preserves failures: a subset any member of which can fail, fails.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::HideNonOutput`] if a hidden symbol is an input,
    /// or [`TraceError::UnknownSymbol`] if it does not exist.
    pub fn hide(&self, hidden: &[&str]) -> Result<TraceStructure, TraceError> {
        let mut hide_set = BTreeSet::new();
        for name in hidden {
            let i = self
                .symbol_index(name)
                .ok_or_else(|| TraceError::UnknownSymbol {
                    symbol: (*name).to_string(),
                })?;
            if self.symbols[i].1 != Dir::Output {
                return Err(TraceError::HideNonOutput {
                    symbol: (*name).to_string(),
                });
            }
            hide_set.insert(i);
        }
        // ε-closure over hidden output transitions.
        let closure = |seed: BTreeSet<usize>| -> BTreeSet<usize> {
            let mut set = seed;
            let mut stack: Vec<usize> = set.iter().copied().collect();
            while let Some(s) = stack.pop() {
                for &h in &hide_set {
                    if let Some(&t) = self.delta.get(&(s, h)) {
                        if set.insert(t) {
                            stack.push(t);
                        }
                    }
                }
            }
            set
        };
        let visible: Vec<usize> = (0..self.symbols.len())
            .filter(|s| !hide_set.contains(s))
            .collect();
        let mut out = TraceStructure::new();
        let mut sym_map: HashMap<usize, usize> = HashMap::new();
        for &s in &visible {
            let (name, dir) = &self.symbols[s];
            sym_map.insert(s, out.add_symbol(name.clone(), *dir));
        }
        let start = closure(BTreeSet::from([self.initial]));
        let mut index: HashMap<BTreeSet<usize>, usize> = HashMap::new();
        index.insert(start.clone(), 0);
        let mut queue = vec![start];
        while let Some(set) = queue.pop() {
            let from = index[&set];
            for &sym in &visible {
                let mut next = BTreeSet::new();
                let mut fails = false;
                let mut any_possible = false;
                for &s in &set {
                    if self.possible(s, sym) {
                        any_possible = true;
                        match self.step(s, sym) {
                            Step::To(t) => {
                                next.insert(t);
                            }
                            Step::Failure => fails = true,
                        }
                    }
                }
                if !any_possible {
                    continue;
                }
                // A failing member of the subset leaves the transition
                // partial; with `next` empty the symbol edge is dropped and
                // receptive semantics re-derives the failure for inputs.
                let _ = fails;
                if next.is_empty() {
                    continue;
                }
                let next = closure(next);
                let to = *index.entry(next.clone()).or_insert_with(|| {
                    queue.push(next.clone());
                    out.add_state()
                });
                out.add_transition(from, sym_map[&sym], to);
            }
        }
        Ok(out)
    }

    /// Conformance check `self ≤ spec` (Dill): the implementation can
    /// replace the specification in every environment. Decided by composing
    /// `self` with `mirror(spec)` and searching for a reachable failure.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::AlphabetMismatch`] if alphabets differ.
    pub fn conforms_to(&self, spec: &TraceStructure) -> Result<bool, TraceError> {
        let mut a: Vec<(String, Dir)> = self.symbols.clone();
        let mut b: Vec<(String, Dir)> = spec.symbols.clone();
        a.sort();
        b.sort();
        if a != b {
            return Err(TraceError::AlphabetMismatch {
                detail: format!("{a:?} vs {b:?}"),
            });
        }
        let composite = self.compose(&spec.mirror())?;
        Ok(!composite.failure_reachable)
    }

    /// Two-way conformance (trace equivalence for our purposes).
    ///
    /// # Errors
    ///
    /// Propagates alphabet mismatches.
    pub fn equivalent_to(&self, other: &TraceStructure) -> Result<bool, TraceError> {
        Ok(self.conforms_to(other)? && other.conforms_to(self)?)
    }
}

/// Result of [`TraceStructure::compose`]: the composed structure plus
/// whether any failure (choke) is reachable.
#[derive(Debug, Clone)]
pub struct Composite {
    /// The composed trace structure (failures represented implicitly).
    pub structure: TraceStructure,
    /// Whether a failure is reachable in the composition.
    pub failure_reachable: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A module that does the four-phase cycle in -> out -> in -> out.
    fn handshake_echo() -> TraceStructure {
        let mut t = TraceStructure::new();
        let r = t.add_symbol("req", Dir::Input);
        let a = t.add_symbol("ack", Dir::Output);
        let s0 = 0;
        let s1 = t.add_state();
        t.add_transition(s0, r, s1);
        t.add_transition(s1, a, s0);
        t
    }

    #[test]
    fn accepts_alternating_trace() {
        let t = handshake_echo();
        assert!(t.accepts(&["req", "ack", "req", "ack"]).unwrap());
        assert!(!t.accepts(&["ack"]).unwrap());
        // req twice: second req chokes (input with no transition at s1).
        assert!(!t.accepts(&["req", "req"]).unwrap());
    }

    #[test]
    fn unknown_symbol_is_error() {
        let t = handshake_echo();
        assert!(matches!(
            t.accepts(&["zap"]),
            Err(TraceError::UnknownSymbol { .. })
        ));
    }

    #[test]
    fn mirror_flips_directions() {
        let t = handshake_echo();
        let m = t.mirror();
        assert_eq!(m.symbols()[0].1, Dir::Output);
        assert_eq!(m.symbols()[1].1, Dir::Input);
    }

    #[test]
    fn self_conformance() {
        let t = handshake_echo();
        assert!(t.conforms_to(&t).unwrap());
        assert!(t.equivalent_to(&t).unwrap());
    }

    /// An "eager" module that emits ack without waiting does NOT conform to
    /// the echo specification.
    #[test]
    fn eager_module_fails_conformance() {
        let mut e = TraceStructure::new();
        let r = e.add_symbol("req", Dir::Input);
        let a = e.add_symbol("ack", Dir::Output);
        let s0 = 0;
        let s1 = e.add_state();
        // emits ack first!
        e.add_transition(s0, a, s1);
        e.add_transition(s1, r, s0);
        let spec = handshake_echo();
        assert!(!e.conforms_to(&spec).unwrap());
    }

    /// A module with fewer behaviours (more restrictive outputs) conforms.
    #[test]
    fn stopped_module_conforms_if_it_never_chokes() {
        // A module that accepts req forever and never acks: conforms only if
        // the spec's environment may keep sending reqs. For the echo spec,
        // after req the mirror-env awaits ack and may not send req again; a
        // silent module never chokes it, so it conforms (safety-only theory).
        let mut m = TraceStructure::new();
        let _r = m.add_symbol("req", Dir::Input);
        let _a = m.add_symbol("ack", Dir::Output);
        let s0 = 0;
        m.add_transition(s0, 0, s0); // absorb reqs, never ack
        let spec = handshake_echo();
        assert!(m.conforms_to(&spec).unwrap());
        // But the spec does not conform back (it can emit ack the mirror of
        // m never accepts... mirror of m accepts ack? m has no ack move, so
        // its mirror cannot accept ack -> failure).
        assert!(!spec.conforms_to(&m).unwrap());
    }

    #[test]
    fn alphabet_mismatch_detected() {
        let t = handshake_echo();
        let mut u = TraceStructure::new();
        u.add_symbol("other", Dir::Input);
        assert!(matches!(
            t.conforms_to(&u),
            Err(TraceError::AlphabetMismatch { .. })
        ));
    }

    #[test]
    fn compose_pipeline_and_hide_internal() {
        // Stage 1 encloses a full handshake on m inside the handshake on a:
        // a_req -> m_req -> m_ack -> a_ack. Stage 2 echoes m_req -> m_ack.
        // With flow control no environment can cause an overrun, so the
        // composite is failure-free; hiding m gives the a-echo behaviour.
        let mut s1 = TraceStructure::new();
        let ar = s1.add_symbol("a_req", Dir::Input);
        let mr = s1.add_symbol("m_req", Dir::Output);
        let ma = s1.add_symbol("m_ack", Dir::Input);
        let aa = s1.add_symbol("a_ack", Dir::Output);
        let (q1, q2, q3) = (s1.add_state(), s1.add_state(), s1.add_state());
        s1.add_transition(0, ar, q1);
        s1.add_transition(q1, mr, q2);
        s1.add_transition(q2, ma, q3);
        s1.add_transition(q3, aa, 0);
        let mut s2 = TraceStructure::new();
        let mr2 = s2.add_symbol("m_req", Dir::Input);
        let ma2 = s2.add_symbol("m_ack", Dir::Output);
        let p1 = s2.add_state();
        s2.add_transition(0, mr2, p1);
        s2.add_transition(p1, ma2, 0);
        let comp = s1.compose(&s2).unwrap();
        assert!(!comp.failure_reachable);
        let hidden = comp.structure.hide(&["m_req", "m_ack"]).unwrap();
        // The result should be equivalent to a direct a_req -> a_ack echo.
        let mut spec = TraceStructure::new();
        let sa = spec.add_symbol("a_req", Dir::Input);
        let sb = spec.add_symbol("a_ack", Dir::Output);
        let t1 = spec.add_state();
        spec.add_transition(0, sa, t1);
        spec.add_transition(t1, sb, 0);
        assert!(hidden.equivalent_to(&spec).unwrap());
    }

    #[test]
    fn unbuffered_pipeline_can_be_overrun() {
        // Without flow control the environment may inject a second token
        // while the consumer is busy; composition reports the reachable
        // module-caused choke.
        let mut s1 = TraceStructure::new();
        let a = s1.add_symbol("a", Dir::Input);
        let m = s1.add_symbol("m", Dir::Output);
        let q1 = s1.add_state();
        s1.add_transition(0, a, q1);
        s1.add_transition(q1, m, 0);
        let mut s2 = TraceStructure::new();
        let m2 = s2.add_symbol("m", Dir::Input);
        let b = s2.add_symbol("b", Dir::Output);
        let q2 = s2.add_state();
        s2.add_transition(0, m2, q2);
        s2.add_transition(q2, b, 0);
        let comp = s1.compose(&s2).unwrap();
        assert!(comp.failure_reachable);
    }

    #[test]
    fn compose_detects_choke() {
        // Producer that outputs x immediately; consumer that never accepts x.
        let mut p = TraceStructure::new();
        let x = p.add_symbol("x", Dir::Output);
        let q = p.add_state();
        p.add_transition(0, x, q);
        let mut c = TraceStructure::new();
        let _x = c.add_symbol("x", Dir::Input);
        // no transitions: always chokes on x
        let comp = p.compose(&c).unwrap();
        assert!(comp.failure_reachable);
    }

    #[test]
    fn output_conflict_rejected() {
        let mut a = TraceStructure::new();
        a.add_symbol("x", Dir::Output);
        let mut b = TraceStructure::new();
        b.add_symbol("x", Dir::Output);
        assert!(matches!(
            a.compose(&b),
            Err(TraceError::OutputConflict { .. })
        ));
    }

    #[test]
    fn hide_rejects_inputs() {
        let t = handshake_echo();
        assert!(matches!(
            t.hide(&["req"]),
            Err(TraceError::HideNonOutput { .. })
        ));
    }
}
