//! Receptive trace structures as finite automata.
//!
//! Follows Dill's trace theory [Dill 1989]: a module is a prefix-closed,
//! receptive trace structure over an alphabet partitioned into inputs and
//! outputs. We represent the structure as a deterministic automaton with an
//! implicit failure state: an input symbol with no defined transition leads
//! to failure (the module "chokes"); an output symbol with no defined
//! transition simply cannot be produced.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// Direction of a symbol relative to the module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dir {
    /// The environment produces this symbol.
    Input,
    /// The module produces this symbol.
    Output,
}

impl Dir {
    /// The mirrored direction.
    pub fn flip(self) -> Dir {
        match self {
            Dir::Input => Dir::Output,
            Dir::Output => Dir::Input,
        }
    }
}

/// Result of taking a symbol from a state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    To(usize),
    Failure,
}

/// Errors raised by trace-structure operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// Both composed modules drive the same symbol.
    OutputConflict {
        /// The doubly-driven symbol.
        symbol: String,
    },
    /// Tried to hide a symbol that is not an output.
    HideNonOutput {
        /// The offending symbol.
        symbol: String,
    },
    /// Conformance requires identical alphabets (names and directions).
    AlphabetMismatch {
        /// Description of the difference.
        detail: String,
    },
    /// A referenced symbol does not exist.
    UnknownSymbol {
        /// The name.
        symbol: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::OutputConflict { symbol } => {
                write!(f, "symbol {symbol} is an output of both composed modules")
            }
            TraceError::HideNonOutput { symbol } => {
                write!(f, "cannot hide non-output symbol {symbol}")
            }
            TraceError::AlphabetMismatch { detail } => write!(f, "alphabet mismatch: {detail}"),
            TraceError::UnknownSymbol { symbol } => write!(f, "unknown symbol {symbol}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// A receptive trace structure.
///
/// # Examples
///
/// ```
/// use bmbe_trace::automaton::{Dir, TraceStructure};
///
/// // A wire: receives `a`, then emits `b`, repeatedly.
/// let mut w = TraceStructure::new();
/// let a = w.add_symbol("a", Dir::Input);
/// let b = w.add_symbol("b", Dir::Output);
/// let s0 = w.add_state();
/// let s1 = w.add_state();
/// w.set_initial(s0);
/// w.add_transition(s0, a, s1);
/// w.add_transition(s1, b, s0);
/// assert!(w.accepts(&["a", "b", "a"]).unwrap());
/// assert!(!w.accepts(&["b"]).unwrap()); // cannot produce b before a
/// ```
#[derive(Debug, Clone)]
pub struct TraceStructure {
    symbols: Vec<(String, Dir)>,
    by_name: HashMap<String, usize>,
    num_states: usize,
    initial: usize,
    delta: HashMap<(usize, usize), usize>,
}

impl Default for TraceStructure {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceStructure {
    /// Creates an empty structure with a single initial state.
    pub fn new() -> Self {
        TraceStructure {
            symbols: Vec::new(),
            by_name: HashMap::new(),
            num_states: 1,
            initial: 0,
            delta: HashMap::new(),
        }
    }

    /// Adds (or finds) a symbol; returns its index.
    ///
    /// # Panics
    ///
    /// Panics if the symbol exists with a different direction.
    pub fn add_symbol(&mut self, name: impl Into<String>, dir: Dir) -> usize {
        let name = name.into();
        if let Some(&i) = self.by_name.get(&name) {
            assert_eq!(
                self.symbols[i].1, dir,
                "symbol {name} re-added with different direction"
            );
            return i;
        }
        let i = self.symbols.len();
        self.by_name.insert(name.clone(), i);
        self.symbols.push((name, dir));
        i
    }

    /// Adds a fresh state; returns its index.
    pub fn add_state(&mut self) -> usize {
        self.num_states += 1;
        self.num_states - 1
    }

    /// Sets the initial state.
    pub fn set_initial(&mut self, s: usize) {
        assert!(s < self.num_states);
        self.initial = s;
    }

    /// Defines the transition `from --symbol--> to`.
    pub fn add_transition(&mut self, from: usize, symbol: usize, to: usize) {
        assert!(from < self.num_states && to < self.num_states && symbol < self.symbols.len());
        self.delta.insert((from, symbol), to);
    }

    /// The alphabet as `(name, direction)` pairs.
    pub fn symbols(&self) -> &[(String, Dir)] {
        &self.symbols
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// The initial state.
    pub fn initial(&self) -> usize {
        self.initial
    }

    /// Looks up a symbol index by name.
    pub fn symbol_index(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// Number of defined transitions.
    pub fn num_transitions(&self) -> usize {
        self.delta.len()
    }

    /// Copies every outgoing transition of `from_state` onto `onto`
    /// (used to alias a goto source with its label state when building
    /// automata from linear expansions). Existing transitions of `onto`
    /// are kept.
    pub fn copy_outgoing(&mut self, from_state: usize, onto: usize) {
        let copies: Vec<(usize, usize)> = self
            .delta
            .iter()
            .filter(|((s, _), _)| *s == from_state)
            .map(|((_, sym), t)| (*sym, *t))
            .collect();
        for (sym, t) in copies {
            self.delta.entry((onto, sym)).or_insert(t);
        }
    }

    fn step(&self, state: usize, symbol: usize) -> Step {
        match self.delta.get(&(state, symbol)) {
            Some(&s) => Step::To(s),
            None => Step::Failure,
        }
    }

    /// Whether the symbol can occur at the state: inputs always can
    /// (receptiveness), outputs only when defined.
    fn possible(&self, state: usize, symbol: usize) -> bool {
        match self.symbols[symbol].1 {
            Dir::Input => true,
            Dir::Output => self.delta.contains_key(&(state, symbol)),
        }
    }

    /// Whether a trace (by symbol names) is a success trace of the module.
    ///
    /// A trace that chokes on an input is a failure; a trace containing an
    /// output the module cannot produce is simply not a trace (returns
    /// `false` as well).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnknownSymbol`] for names outside the alphabet.
    pub fn accepts(&self, trace: &[&str]) -> Result<bool, TraceError> {
        let mut state = self.initial;
        for name in trace {
            let sym = self
                .symbol_index(name)
                .ok_or_else(|| TraceError::UnknownSymbol {
                    symbol: (*name).to_string(),
                })?;
            if !self.possible(state, sym) {
                return Ok(false);
            }
            match self.step(state, sym) {
                Step::To(s) => state = s,
                Step::Failure => return Ok(false),
            }
        }
        Ok(true)
    }

    /// The mirror: inputs and outputs exchanged.
    pub fn mirror(&self) -> TraceStructure {
        let mut m = self.clone();
        for (_, dir) in &mut m.symbols {
            *dir = dir.flip();
        }
        m
    }

    /// Dill composition of two modules.
    ///
    /// Shared symbols synchronize; a symbol driven by one module and
    /// received by the other becomes an output of the composite. A failure
    /// occurs when a produced or environment-supplied symbol chokes either
    /// receiver.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::OutputConflict`] when both modules drive the
    /// same symbol.
    pub fn compose(&self, other: &TraceStructure) -> Result<Composite, TraceError> {
        let MergedAlphabet {
            names,
            dirs,
            in_a,
            in_b,
        } = merge_alphabets(&self.symbols, &other.symbols)?;
        // Explore the product.
        let mut result = TraceStructure::new();
        for (n, d) in names.iter().zip(&dirs) {
            result.add_symbol(n.clone(), *d);
        }
        let mut failure_reachable = false;
        let mut index: HashMap<(usize, usize), usize> = HashMap::new();
        index.insert((self.initial, other.initial), 0);
        let mut queue = vec![(self.initial, other.initial)];
        while let Some((sa, sb)) = queue.pop() {
            let from = index[&(sa, sb)];
            for sym in 0..names.len() {
                let a_sym = in_a[sym];
                let b_sym = in_b[sym];
                // Can this symbol occur here?
                let producible = match dirs[sym] {
                    Dir::Input => true,
                    Dir::Output => {
                        // Some party must be able to output it.
                        let a_out = a_sym.is_some_and(|s| {
                            self.symbols[s].1 == Dir::Output && self.possible(sa, s)
                        });
                        let b_out = b_sym.is_some_and(|s| {
                            other.symbols[s].1 == Dir::Output && other.possible(sb, s)
                        });
                        a_out || b_out
                    }
                };
                if !producible {
                    continue;
                }
                // Both participants step; a choked receiver is a failure.
                let na = match a_sym {
                    Some(s) => match self.step(sa, s) {
                        Step::To(t) => Some(t),
                        Step::Failure => None,
                    },
                    None => Some(sa),
                };
                let nb = match b_sym {
                    Some(s) => match other.step(sb, s) {
                        Step::To(t) => Some(t),
                        Step::Failure => None,
                    },
                    None => Some(sb),
                };
                match (na, nb) {
                    (Some(na), Some(nb)) => {
                        let next = *index.entry((na, nb)).or_insert_with(|| {
                            queue.push((na, nb));
                            result.add_state()
                        });
                        result.add_transition(from, sym, next);
                    }
                    _ => {
                        // A choke. For a composite *input* the transition is
                        // simply left undefined: receptive semantics makes
                        // that an implicit failure, preserved for later
                        // compositions. A choke on a *module-produced*
                        // symbol is a failure no environment choice at this
                        // step can undo; record it in the flag (this is the
                        // exact condition the mirror-based conformance check
                        // needs, where every symbol is an output).
                        if dirs[sym] == Dir::Output {
                            failure_reachable = true;
                        }
                    }
                }
            }
        }
        Ok(Composite {
            structure: result,
            failure_reachable,
        })
    }

    /// Hides output symbols, determinizing the result.
    ///
    /// Hidden symbols become internal moves (ε). The subset construction
    /// preserves failures: a subset any member of which can fail, fails.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::HideNonOutput`] if a hidden symbol is an input,
    /// or [`TraceError::UnknownSymbol`] if it does not exist.
    pub fn hide(&self, hidden: &[&str]) -> Result<TraceStructure, TraceError> {
        let mut hide_set = BTreeSet::new();
        for name in hidden {
            let i = self
                .symbol_index(name)
                .ok_or_else(|| TraceError::UnknownSymbol {
                    symbol: (*name).to_string(),
                })?;
            if self.symbols[i].1 != Dir::Output {
                return Err(TraceError::HideNonOutput {
                    symbol: (*name).to_string(),
                });
            }
            hide_set.insert(i);
        }
        // ε-closure over hidden output transitions.
        let closure = |seed: BTreeSet<usize>| -> BTreeSet<usize> {
            let mut set = seed;
            let mut stack: Vec<usize> = set.iter().copied().collect();
            while let Some(s) = stack.pop() {
                for &h in &hide_set {
                    if let Some(&t) = self.delta.get(&(s, h)) {
                        if set.insert(t) {
                            stack.push(t);
                        }
                    }
                }
            }
            set
        };
        let visible: Vec<usize> = (0..self.symbols.len())
            .filter(|s| !hide_set.contains(s))
            .collect();
        let mut out = TraceStructure::new();
        let mut sym_map: HashMap<usize, usize> = HashMap::new();
        for &s in &visible {
            let (name, dir) = &self.symbols[s];
            sym_map.insert(s, out.add_symbol(name.clone(), *dir));
        }
        let start = closure(BTreeSet::from([self.initial]));
        let mut index: HashMap<BTreeSet<usize>, usize> = HashMap::new();
        index.insert(start.clone(), 0);
        let mut queue = vec![start];
        while let Some(set) = queue.pop() {
            let from = index[&set];
            for &sym in &visible {
                let mut next = BTreeSet::new();
                let mut fails = false;
                let mut any_possible = false;
                for &s in &set {
                    if self.possible(s, sym) {
                        any_possible = true;
                        match self.step(s, sym) {
                            Step::To(t) => {
                                next.insert(t);
                            }
                            Step::Failure => fails = true,
                        }
                    }
                }
                if !any_possible {
                    continue;
                }
                // A failing member of the subset leaves the transition
                // partial; with `next` empty the symbol edge is dropped and
                // receptive semantics re-derives the failure for inputs.
                let _ = fails;
                if next.is_empty() {
                    continue;
                }
                let next = closure(next);
                let to = *index.entry(next.clone()).or_insert_with(|| {
                    queue.push(next.clone());
                    out.add_state()
                });
                out.add_transition(from, sym_map[&sym], to);
            }
        }
        Ok(out)
    }

    /// Conformance check `self ≤ spec` (Dill): the implementation can
    /// replace the specification in every environment. Decided by composing
    /// `self` with `mirror(spec)` and searching for a reachable failure.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::AlphabetMismatch`] if alphabets differ.
    pub fn conforms_to(&self, spec: &TraceStructure) -> Result<bool, TraceError> {
        let mut a: Vec<(String, Dir)> = self.symbols.clone();
        let mut b: Vec<(String, Dir)> = spec.symbols.clone();
        a.sort();
        b.sort();
        if a != b {
            return Err(TraceError::AlphabetMismatch {
                detail: format!("{a:?} vs {b:?}"),
            });
        }
        let composite = self.compose(&spec.mirror())?;
        Ok(!composite.failure_reachable)
    }

    /// Two-way conformance (trace equivalence for our purposes).
    ///
    /// # Errors
    ///
    /// Propagates alphabet mismatches.
    pub fn equivalent_to(&self, other: &TraceStructure) -> Result<bool, TraceError> {
        Ok(self.conforms_to(other)? && other.conforms_to(self)?)
    }

    /// On-the-fly conformance check `self ≤ spec`.
    ///
    /// Decides the same question as [`conforms_to`](Self::conforms_to) but
    /// explores the product with `mirror(spec)` lazily: state pairs are
    /// hash-interned as they are reached, no composite transitions are
    /// stored, and the search stops at the first reachable failure — with a
    /// shortest witness trace for diagnostics. When the answer is "yes" the
    /// search visits exactly the composite's reachable states; when "no" it
    /// usually visits far fewer.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::AlphabetMismatch`] if alphabets differ.
    pub fn conforms_to_otf(&self, spec: &TraceStructure) -> Result<OtfOutcome, TraceError> {
        let mut a: Vec<(String, Dir)> = self.symbols.clone();
        let mut b: Vec<(String, Dir)> = spec.symbols.clone();
        a.sort();
        b.sort();
        if a != b {
            return Err(TraceError::AlphabetMismatch {
                detail: format!("{a:?} vs {b:?}"),
            });
        }
        let mut lhs = ConcreteView {
            t: self,
            flip: false,
        };
        let mut rhs = ConcreteView {
            t: spec,
            flip: true,
        };
        search_failure(&mut lhs, &mut rhs)
    }

    /// On-the-fly failure-reachability of the composition `self ∥ other`.
    ///
    /// Answers the same question as `compose(other)?.failure_reachable`
    /// without materializing the composite automaton: early exit on the
    /// first failure, with a shortest witness trace.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::OutputConflict`] when both modules drive the
    /// same symbol.
    pub fn failure_search(&self, other: &TraceStructure) -> Result<OtfOutcome, TraceError> {
        let mut lhs = ConcreteView {
            t: self,
            flip: false,
        };
        let mut rhs = ConcreteView {
            t: other,
            flip: false,
        };
        search_failure(&mut lhs, &mut rhs)
    }
}

/// Result of an on-the-fly failure-reachability search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OtfOutcome {
    /// Whether no failure is reachable: for a conformance search the
    /// implementation conforms, for a composition search the composition is
    /// safe.
    pub ok: bool,
    /// Distinct product states interned before the search stopped. With
    /// `ok` this equals the reachable composite state count; on early exit
    /// it is usually much smaller.
    pub states_visited: usize,
    /// Largest number of interned-but-unexpanded states the breadth-first
    /// search held at once (its memory high-water mark, reported through
    /// the observability metrics).
    pub peak_frontier: usize,
    /// A shortest trace driving the product into a failure, when `ok` is
    /// `false`.
    pub counterexample: Option<Vec<String>>,
}

/// The merged alphabet of a composition: composite name/direction tables
/// plus each side's symbol index for every composite symbol.
struct MergedAlphabet {
    names: Vec<String>,
    dirs: Vec<Dir>,
    in_a: Vec<Option<usize>>,
    in_b: Vec<Option<usize>>,
}

/// Merges two alphabets under Dill composition rules: shared symbols
/// synchronize, an output met by an input stays an output of the composite,
/// two outputs conflict.
fn merge_alphabets(
    a: &[(String, Dir)],
    b: &[(String, Dir)],
) -> Result<MergedAlphabet, TraceError> {
    let mut names: Vec<String> = Vec::new();
    let mut dirs: Vec<Dir> = Vec::new();
    let mut in_a: Vec<Option<usize>> = Vec::new();
    let mut in_b: Vec<Option<usize>> = Vec::new();
    let mut seen: BTreeMap<String, usize> = BTreeMap::new();
    for (ai, (name, dir)) in a.iter().enumerate() {
        let i = names.len();
        seen.insert(name.clone(), i);
        names.push(name.clone());
        dirs.push(*dir);
        in_a.push(Some(ai));
        in_b.push(None);
    }
    for (bi, (name, dir)) in b.iter().enumerate() {
        match seen.get(name) {
            Some(&i) => {
                in_b[i] = Some(bi);
                match (dirs[i], dir) {
                    (Dir::Output, Dir::Output) => {
                        return Err(TraceError::OutputConflict {
                            symbol: name.clone(),
                        })
                    }
                    (Dir::Output, Dir::Input) | (Dir::Input, Dir::Output) => dirs[i] = Dir::Output,
                    (Dir::Input, Dir::Input) => {}
                }
            }
            None => {
                let i = names.len();
                seen.insert(name.clone(), i);
                names.push(name.clone());
                dirs.push(*dir);
                in_a.push(None);
                in_b.push(Some(bi));
            }
        }
    }
    Ok(MergedAlphabet {
        names,
        dirs,
        in_a,
        in_b,
    })
}

/// One side of a lazily explored product: a concrete structure (possibly
/// viewed through a mirror) or a lazily determinized hidden composition.
/// States are side-local `usize` ids; `step` returns `None` on a choke.
trait ProductSide {
    /// The side's effective alphabet (mirroring already applied).
    fn alphabet(&self) -> Vec<(String, Dir)>;
    /// The side's initial state (may intern lazily).
    fn initial(&mut self) -> usize;
    /// Receptive possibility: effective inputs always may occur, effective
    /// outputs only where the side defines a transition.
    fn possible(&mut self, state: usize, sym: usize) -> bool;
    /// Takes the symbol; `None` is a choke (no defined transition).
    fn step(&mut self, state: usize, sym: usize) -> Option<usize>;
}

/// A `&TraceStructure` as a product side; `flip` views it mirrored without
/// cloning.
struct ConcreteView<'a> {
    t: &'a TraceStructure,
    flip: bool,
}

impl ConcreteView<'_> {
    fn dir(&self, sym: usize) -> Dir {
        let d = self.t.symbols[sym].1;
        if self.flip {
            d.flip()
        } else {
            d
        }
    }
}

impl ProductSide for ConcreteView<'_> {
    fn alphabet(&self) -> Vec<(String, Dir)> {
        (0..self.t.symbols.len())
            .map(|i| (self.t.symbols[i].0.clone(), self.dir(i)))
            .collect()
    }

    fn initial(&mut self) -> usize {
        self.t.initial
    }

    fn possible(&mut self, state: usize, sym: usize) -> bool {
        match self.dir(sym) {
            Dir::Input => true,
            Dir::Output => self.t.delta.contains_key(&(state, sym)),
        }
    }

    fn step(&mut self, state: usize, sym: usize) -> Option<usize> {
        self.t.delta.get(&(state, sym)).copied()
    }
}

/// Lazy failure search over the product of two sides.
///
/// Mirrors [`TraceStructure::compose`]'s semantics exactly — same
/// producible rule, same both-participants-step rule, a choke on a
/// composite *output* is the failure — but breadth-first with hash-interned
/// state pairs and parent pointers, stopping at the first failure and
/// reconstructing a shortest witness trace. Composite transitions are never
/// stored.
fn search_failure<A: ProductSide, B: ProductSide>(
    a: &mut A,
    b: &mut B,
) -> Result<OtfOutcome, TraceError> {
    let alpha_a = a.alphabet();
    let alpha_b = b.alphabet();
    let MergedAlphabet {
        names,
        dirs,
        in_a,
        in_b,
    } = merge_alphabets(&alpha_a, &alpha_b)?;
    let start = (a.initial(), b.initial());
    let mut index: HashMap<(usize, usize), usize> = HashMap::new();
    index.insert(start, 0);
    let mut states: Vec<(usize, usize)> = vec![start];
    let mut parents: Vec<Option<(usize, usize)>> = vec![None];
    let mut head = 0;
    let mut peak_frontier = 1;
    while head < states.len() {
        peak_frontier = peak_frontier.max(states.len() - head);
        let (sa, sb) = states[head];
        for sym in 0..names.len() {
            let a_sym = in_a[sym];
            let b_sym = in_b[sym];
            let producible = match dirs[sym] {
                Dir::Input => true,
                Dir::Output => {
                    let a_out = a_sym
                        .is_some_and(|s| alpha_a[s].1 == Dir::Output && a.possible(sa, s));
                    let b_out = b_sym
                        .is_some_and(|s| alpha_b[s].1 == Dir::Output && b.possible(sb, s));
                    a_out || b_out
                }
            };
            if !producible {
                continue;
            }
            let na = match a_sym {
                Some(s) => a.step(sa, s),
                None => Some(sa),
            };
            let nb = match b_sym {
                Some(s) => b.step(sb, s),
                None => Some(sb),
            };
            match (na, nb) {
                (Some(na), Some(nb)) => {
                    if let std::collections::hash_map::Entry::Vacant(e) = index.entry((na, nb)) {
                        e.insert(states.len());
                        states.push((na, nb));
                        parents.push(Some((head, sym)));
                    }
                }
                _ => {
                    // An input choke stays an implicit receptive failure of
                    // the composite (no successor); a choke on a produced
                    // symbol is the reachable failure we are looking for.
                    if dirs[sym] == Dir::Output {
                        let mut trace = vec![names[sym].clone()];
                        let mut at = head;
                        while let Some((p, s)) = parents[at] {
                            trace.push(names[s].clone());
                            at = p;
                        }
                        trace.reverse();
                        return Ok(OtfOutcome {
                            ok: false,
                            states_visited: states.len(),
                            peak_frontier,
                            counterexample: Some(trace),
                        });
                    }
                }
            }
        }
        head += 1;
    }
    Ok(OtfOutcome {
        ok: true,
        states_visited: states.len(),
        peak_frontier,
        counterexample: None,
    })
}

/// A lazily determinized hidden composition: the automaton
/// `hide(compose(a, b), hidden)` explored on demand.
///
/// States are ε-closed subsets of composite state pairs, hash-interned the
/// first time a conformance search reaches them; transitions are memoized
/// and shared across every search run against the same value. Nothing of
/// the composite — neither its state table nor its transitions — is ever
/// materialized, which is where the on-the-fly verification path saves its
/// states over the `compose` + `hide` pipeline.
pub struct HiddenComposition<'a> {
    a: &'a TraceStructure,
    b: &'a TraceStructure,
    names: Vec<String>,
    dirs: Vec<Dir>,
    in_a: Vec<Option<usize>>,
    in_b: Vec<Option<usize>>,
    hidden: Vec<usize>,
    /// Visible composite symbols, as `(composite index, name, dir)`.
    visible: Vec<(usize, String, Dir)>,
    subsets: Vec<BTreeSet<(usize, usize)>>,
    subset_index: HashMap<BTreeSet<(usize, usize)>, usize>,
    memo: HashMap<(usize, usize), Option<usize>>,
    initial: Option<usize>,
    /// First composite failure (a produced symbol choking a receiver)
    /// encountered while stepping members — the lazy counterpart of
    /// `compose`'s `failure_reachable` flag. Interior-mutable because it is
    /// recorded from the `&self` stepping helpers.
    comp_failure: std::cell::RefCell<Option<String>>,
}

impl<'a> HiddenComposition<'a> {
    /// Sets up the lazy composition of `a` and `b` with the named output
    /// symbols hidden. No exploration happens yet.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::OutputConflict`] when both modules drive the
    /// same symbol, [`TraceError::UnknownSymbol`] for a hidden name outside
    /// the composite alphabet, and [`TraceError::HideNonOutput`] for a
    /// hidden name that is not a composite output.
    pub fn new(
        a: &'a TraceStructure,
        b: &'a TraceStructure,
        hidden: &[&str],
    ) -> Result<Self, TraceError> {
        let MergedAlphabet {
            names,
            dirs,
            in_a,
            in_b,
        } = merge_alphabets(&a.symbols, &b.symbols)?;
        let mut hide_set = BTreeSet::new();
        for name in hidden {
            let i = names.iter().position(|n| n == name).ok_or_else(|| {
                TraceError::UnknownSymbol {
                    symbol: (*name).to_string(),
                }
            })?;
            if dirs[i] != Dir::Output {
                return Err(TraceError::HideNonOutput {
                    symbol: (*name).to_string(),
                });
            }
            hide_set.insert(i);
        }
        let visible = names
            .iter()
            .enumerate()
            .filter(|(i, _)| !hide_set.contains(i))
            .map(|(i, n)| (i, n.clone(), dirs[i]))
            .collect();
        Ok(HiddenComposition {
            a,
            b,
            names,
            dirs,
            in_a,
            in_b,
            hidden: hide_set.into_iter().collect(),
            visible,
            subsets: Vec::new(),
            subset_index: HashMap::new(),
            memo: HashMap::new(),
            initial: None,
            comp_failure: std::cell::RefCell::new(None),
        })
    }

    /// A composite failure noticed during lazy exploration: the name of a
    /// produced symbol that choked a receiver, if one was stepped over.
    ///
    /// When a conformance search has run in **both** directions and both
    /// held, the exploration has covered every reachable composite state
    /// (equivalence makes every visible trace of the composition a trace of
    /// the spec, so the product walks them all, and subsets partition the
    /// composite's reachable states by visible projection) — `None` then
    /// proves `compose(a, b).failure_reachable` would be `false`. After a
    /// failed or one-sided search the answer is only partial; fall back to
    /// [`TraceStructure::failure_search`] for a definitive check.
    pub fn composition_failure(&self) -> Option<String> {
        self.comp_failure.borrow().clone()
    }

    /// The visible alphabet (the hidden automaton's symbols).
    pub fn symbols(&self) -> Vec<(String, Dir)> {
        self.visible
            .iter()
            .map(|(_, n, d)| (n.clone(), *d))
            .collect()
    }

    /// Number of subset states materialized so far.
    pub fn subset_states(&self) -> usize {
        self.subsets.len()
    }

    /// On-the-fly conformance `hide(a ∥ b) ≤ spec`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::AlphabetMismatch`] if the visible alphabet
    /// differs from the spec's.
    pub fn conforms_to(&mut self, spec: &TraceStructure) -> Result<OtfOutcome, TraceError> {
        self.check_alphabet(spec)?;
        let mut rhs = ConcreteView {
            t: spec,
            flip: true,
        };
        let mut lhs = HiddenSide {
            h: self,
            flip: false,
        };
        search_failure(&mut lhs, &mut rhs)
    }

    /// On-the-fly conformance `spec ≤ hide(a ∥ b)` (the reverse direction;
    /// together with [`conforms_to`](Self::conforms_to) this decides
    /// equivalence, sharing the subset states already materialized).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::AlphabetMismatch`] if the visible alphabet
    /// differs from the spec's.
    pub fn conformed_by(&mut self, spec: &TraceStructure) -> Result<OtfOutcome, TraceError> {
        self.check_alphabet(spec)?;
        let mut lhs = ConcreteView {
            t: spec,
            flip: false,
        };
        let mut rhs = HiddenSide {
            h: self,
            flip: true,
        };
        search_failure(&mut lhs, &mut rhs)
    }

    fn check_alphabet(&self, spec: &TraceStructure) -> Result<(), TraceError> {
        let mut a = self.symbols();
        let mut b: Vec<(String, Dir)> = spec.symbols.clone();
        a.sort();
        b.sort();
        if a != b {
            return Err(TraceError::AlphabetMismatch {
                detail: format!("{a:?} vs {b:?}"),
            });
        }
        Ok(())
    }

    /// Whether the composite symbol can occur at the member pair: the same
    /// producible rule as [`TraceStructure::compose`], with "the transition
    /// is defined" meaning both participants step.
    fn comp_possible(&self, sa: usize, sb: usize, sym: usize) -> bool {
        match self.dirs[sym] {
            Dir::Input => true,
            Dir::Output => self.comp_step(sa, sb, sym).is_some(),
        }
    }

    /// The composite transition at a member pair, `None` where the
    /// materialized composite would leave it undefined (not producible, or
    /// a participant chokes).
    fn comp_step(&self, sa: usize, sb: usize, sym: usize) -> Option<(usize, usize)> {
        let a_sym = self.in_a[sym];
        let b_sym = self.in_b[sym];
        let producible = match self.dirs[sym] {
            Dir::Input => true,
            Dir::Output => {
                let a_out = a_sym.is_some_and(|s| {
                    self.a.symbols[s].1 == Dir::Output && self.a.possible(sa, s)
                });
                let b_out = b_sym.is_some_and(|s| {
                    self.b.symbols[s].1 == Dir::Output && self.b.possible(sb, s)
                });
                a_out || b_out
            }
        };
        if !producible {
            return None;
        }
        let na = match a_sym {
            Some(s) => match self.a.step(sa, s) {
                Step::To(t) => Some(t),
                Step::Failure => None,
            },
            None => Some(sa),
        };
        let nb = match b_sym {
            Some(s) => match self.b.step(sb, s) {
                Step::To(t) => Some(t),
                Step::Failure => None,
            },
            None => Some(sb),
        };
        match (na, nb) {
            (Some(na), Some(nb)) => Some((na, nb)),
            _ => {
                // The same condition `compose` records in its
                // `failure_reachable` flag: a choke on a produced symbol
                // (input chokes stay implicit receptive failures).
                if self.dirs[sym] == Dir::Output {
                    self.comp_failure
                        .borrow_mut()
                        .get_or_insert_with(|| self.names[sym].clone());
                }
                None
            }
        }
    }

    /// ε-closure over the hidden (defined) composite transitions.
    fn closure(&self, seed: BTreeSet<(usize, usize)>) -> BTreeSet<(usize, usize)> {
        let mut set = seed;
        let mut stack: Vec<(usize, usize)> = set.iter().copied().collect();
        while let Some((sa, sb)) = stack.pop() {
            for hi in 0..self.hidden.len() {
                let h = self.hidden[hi];
                if let Some(t) = self.comp_step(sa, sb, h) {
                    if set.insert(t) {
                        stack.push(t);
                    }
                }
            }
        }
        set
    }

    fn intern(&mut self, set: BTreeSet<(usize, usize)>) -> usize {
        if let Some(&i) = self.subset_index.get(&set) {
            return i;
        }
        let i = self.subsets.len();
        self.subset_index.insert(set.clone(), i);
        self.subsets.push(set);
        i
    }

    fn initial_subset(&mut self) -> usize {
        if let Some(i) = self.initial {
            return i;
        }
        let start = self.closure(BTreeSet::from([(self.a.initial, self.b.initial)]));
        let i = self.intern(start);
        self.initial = Some(i);
        i
    }

    /// The hidden automaton's transition on a visible symbol, memoized:
    /// `None` exactly where the materialized `hide` would drop the edge
    /// (no member admits the symbol, or every admitting member chokes).
    fn resolve(&mut self, state: usize, vis: usize) -> Option<usize> {
        if let Some(&r) = self.memo.get(&(state, vis)) {
            return r;
        }
        let sym = self.visible[vis].0;
        let mut any_possible = false;
        let mut next = BTreeSet::new();
        for &(sa, sb) in &self.subsets[state] {
            if self.comp_possible(sa, sb, sym) {
                any_possible = true;
                if let Some(t) = self.comp_step(sa, sb, sym) {
                    next.insert(t);
                }
            }
        }
        let r = if !any_possible || next.is_empty() {
            None
        } else {
            let closed = self.closure(next);
            Some(self.intern(closed))
        };
        self.memo.insert((state, vis), r);
        r
    }
}

/// A mutable [`HiddenComposition`] as a product side; `flip` views it
/// mirrored.
struct HiddenSide<'h, 'a> {
    h: &'h mut HiddenComposition<'a>,
    flip: bool,
}

impl ProductSide for HiddenSide<'_, '_> {
    fn alphabet(&self) -> Vec<(String, Dir)> {
        self.h
            .visible
            .iter()
            .map(|(_, n, d)| (n.clone(), if self.flip { d.flip() } else { *d }))
            .collect()
    }

    fn initial(&mut self) -> usize {
        self.h.initial_subset()
    }

    fn possible(&mut self, state: usize, sym: usize) -> bool {
        let d = self.h.visible[sym].2;
        let d = if self.flip { d.flip() } else { d };
        match d {
            Dir::Input => true,
            Dir::Output => self.h.resolve(state, sym).is_some(),
        }
    }

    fn step(&mut self, state: usize, sym: usize) -> Option<usize> {
        self.h.resolve(state, sym)
    }
}

/// Result of [`TraceStructure::compose`]: the composed structure plus
/// whether any failure (choke) is reachable.
#[derive(Debug, Clone)]
pub struct Composite {
    /// The composed trace structure (failures represented implicitly).
    pub structure: TraceStructure,
    /// Whether a failure is reachable in the composition.
    pub failure_reachable: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A module that does the four-phase cycle in -> out -> in -> out.
    fn handshake_echo() -> TraceStructure {
        let mut t = TraceStructure::new();
        let r = t.add_symbol("req", Dir::Input);
        let a = t.add_symbol("ack", Dir::Output);
        let s0 = 0;
        let s1 = t.add_state();
        t.add_transition(s0, r, s1);
        t.add_transition(s1, a, s0);
        t
    }

    #[test]
    fn accepts_alternating_trace() {
        let t = handshake_echo();
        assert!(t.accepts(&["req", "ack", "req", "ack"]).unwrap());
        assert!(!t.accepts(&["ack"]).unwrap());
        // req twice: second req chokes (input with no transition at s1).
        assert!(!t.accepts(&["req", "req"]).unwrap());
    }

    #[test]
    fn unknown_symbol_is_error() {
        let t = handshake_echo();
        assert!(matches!(
            t.accepts(&["zap"]),
            Err(TraceError::UnknownSymbol { .. })
        ));
    }

    #[test]
    fn mirror_flips_directions() {
        let t = handshake_echo();
        let m = t.mirror();
        assert_eq!(m.symbols()[0].1, Dir::Output);
        assert_eq!(m.symbols()[1].1, Dir::Input);
    }

    #[test]
    fn self_conformance() {
        let t = handshake_echo();
        assert!(t.conforms_to(&t).unwrap());
        assert!(t.equivalent_to(&t).unwrap());
    }

    /// An "eager" module that emits ack without waiting does NOT conform to
    /// the echo specification.
    #[test]
    fn eager_module_fails_conformance() {
        let mut e = TraceStructure::new();
        let r = e.add_symbol("req", Dir::Input);
        let a = e.add_symbol("ack", Dir::Output);
        let s0 = 0;
        let s1 = e.add_state();
        // emits ack first!
        e.add_transition(s0, a, s1);
        e.add_transition(s1, r, s0);
        let spec = handshake_echo();
        assert!(!e.conforms_to(&spec).unwrap());
    }

    /// A module with fewer behaviours (more restrictive outputs) conforms.
    #[test]
    fn stopped_module_conforms_if_it_never_chokes() {
        // A module that accepts req forever and never acks: conforms only if
        // the spec's environment may keep sending reqs. For the echo spec,
        // after req the mirror-env awaits ack and may not send req again; a
        // silent module never chokes it, so it conforms (safety-only theory).
        let mut m = TraceStructure::new();
        let _r = m.add_symbol("req", Dir::Input);
        let _a = m.add_symbol("ack", Dir::Output);
        let s0 = 0;
        m.add_transition(s0, 0, s0); // absorb reqs, never ack
        let spec = handshake_echo();
        assert!(m.conforms_to(&spec).unwrap());
        // But the spec does not conform back (it can emit ack the mirror of
        // m never accepts... mirror of m accepts ack? m has no ack move, so
        // its mirror cannot accept ack -> failure).
        assert!(!spec.conforms_to(&m).unwrap());
    }

    #[test]
    fn alphabet_mismatch_detected() {
        let t = handshake_echo();
        let mut u = TraceStructure::new();
        u.add_symbol("other", Dir::Input);
        assert!(matches!(
            t.conforms_to(&u),
            Err(TraceError::AlphabetMismatch { .. })
        ));
    }

    #[test]
    fn compose_pipeline_and_hide_internal() {
        // Stage 1 encloses a full handshake on m inside the handshake on a:
        // a_req -> m_req -> m_ack -> a_ack. Stage 2 echoes m_req -> m_ack.
        // With flow control no environment can cause an overrun, so the
        // composite is failure-free; hiding m gives the a-echo behaviour.
        let mut s1 = TraceStructure::new();
        let ar = s1.add_symbol("a_req", Dir::Input);
        let mr = s1.add_symbol("m_req", Dir::Output);
        let ma = s1.add_symbol("m_ack", Dir::Input);
        let aa = s1.add_symbol("a_ack", Dir::Output);
        let (q1, q2, q3) = (s1.add_state(), s1.add_state(), s1.add_state());
        s1.add_transition(0, ar, q1);
        s1.add_transition(q1, mr, q2);
        s1.add_transition(q2, ma, q3);
        s1.add_transition(q3, aa, 0);
        let mut s2 = TraceStructure::new();
        let mr2 = s2.add_symbol("m_req", Dir::Input);
        let ma2 = s2.add_symbol("m_ack", Dir::Output);
        let p1 = s2.add_state();
        s2.add_transition(0, mr2, p1);
        s2.add_transition(p1, ma2, 0);
        let comp = s1.compose(&s2).unwrap();
        assert!(!comp.failure_reachable);
        let hidden = comp.structure.hide(&["m_req", "m_ack"]).unwrap();
        // The result should be equivalent to a direct a_req -> a_ack echo.
        let mut spec = TraceStructure::new();
        let sa = spec.add_symbol("a_req", Dir::Input);
        let sb = spec.add_symbol("a_ack", Dir::Output);
        let t1 = spec.add_state();
        spec.add_transition(0, sa, t1);
        spec.add_transition(t1, sb, 0);
        assert!(hidden.equivalent_to(&spec).unwrap());
    }

    #[test]
    fn unbuffered_pipeline_can_be_overrun() {
        // Without flow control the environment may inject a second token
        // while the consumer is busy; composition reports the reachable
        // module-caused choke.
        let mut s1 = TraceStructure::new();
        let a = s1.add_symbol("a", Dir::Input);
        let m = s1.add_symbol("m", Dir::Output);
        let q1 = s1.add_state();
        s1.add_transition(0, a, q1);
        s1.add_transition(q1, m, 0);
        let mut s2 = TraceStructure::new();
        let m2 = s2.add_symbol("m", Dir::Input);
        let b = s2.add_symbol("b", Dir::Output);
        let q2 = s2.add_state();
        s2.add_transition(0, m2, q2);
        s2.add_transition(q2, b, 0);
        let comp = s1.compose(&s2).unwrap();
        assert!(comp.failure_reachable);
    }

    #[test]
    fn compose_detects_choke() {
        // Producer that outputs x immediately; consumer that never accepts x.
        let mut p = TraceStructure::new();
        let x = p.add_symbol("x", Dir::Output);
        let q = p.add_state();
        p.add_transition(0, x, q);
        let mut c = TraceStructure::new();
        let _x = c.add_symbol("x", Dir::Input);
        // no transitions: always chokes on x
        let comp = p.compose(&c).unwrap();
        assert!(comp.failure_reachable);
    }

    #[test]
    fn output_conflict_rejected() {
        let mut a = TraceStructure::new();
        a.add_symbol("x", Dir::Output);
        let mut b = TraceStructure::new();
        b.add_symbol("x", Dir::Output);
        assert!(matches!(
            a.compose(&b),
            Err(TraceError::OutputConflict { .. })
        ));
    }

    #[test]
    fn hide_rejects_inputs() {
        let t = handshake_echo();
        assert!(matches!(
            t.hide(&["req"]),
            Err(TraceError::HideNonOutput { .. })
        ));
    }

    #[test]
    fn otf_conformance_matches_materialized() {
        let spec = handshake_echo();
        let ok = spec.conforms_to_otf(&spec).unwrap();
        assert!(ok.ok);
        assert!(ok.counterexample.is_none());
        // The otf search with a positive verdict visits exactly the
        // reachable composite states.
        let composite = spec.compose(&spec.mirror()).unwrap();
        assert_eq!(ok.states_visited, composite.structure.num_states());

        let mut eager = TraceStructure::new();
        let r = eager.add_symbol("req", Dir::Input);
        let a = eager.add_symbol("ack", Dir::Output);
        let s1 = eager.add_state();
        eager.add_transition(0, a, s1);
        eager.add_transition(s1, r, 0);
        let bad = eager.conforms_to_otf(&spec).unwrap();
        assert!(!bad.ok);
        // Failure in the very first step: either the eager ack the spec's
        // environment does not expect, or the req it sends that the eager
        // module (busy acking) chokes on. Both are one-symbol witnesses.
        let witness = bad.counterexample.expect("witness");
        assert_eq!(witness.len(), 1);
        assert!(witness[0] == "ack" || witness[0] == "req");
        assert_eq!(
            bad.ok,
            eager.conforms_to(&spec).unwrap(),
            "otf and materialized verdicts must agree"
        );
    }

    #[test]
    fn otf_failure_search_matches_compose() {
        // Overrunnable pipeline: failure reachable, with a witness.
        let mut s1 = TraceStructure::new();
        let a = s1.add_symbol("a", Dir::Input);
        let m = s1.add_symbol("m", Dir::Output);
        let q1 = s1.add_state();
        s1.add_transition(0, a, q1);
        s1.add_transition(q1, m, 0);
        let mut s2 = TraceStructure::new();
        let m2 = s2.add_symbol("m", Dir::Input);
        let b = s2.add_symbol("b", Dir::Output);
        let q2 = s2.add_state();
        s2.add_transition(0, m2, q2);
        s2.add_transition(q2, b, 0);
        let otf = s1.failure_search(&s2).unwrap();
        let mat = s1.compose(&s2).unwrap();
        assert!(mat.failure_reachable);
        assert!(!otf.ok);
        let witness = otf.counterexample.expect("witness trace");
        assert_eq!(witness.last().map(String::as_str), Some("m"));
        // The witness must actually drive the composite into its failure:
        // every proper prefix is a trace of the composite, the full trace
        // is not.
        let names: Vec<&str> = witness.iter().map(String::as_str).collect();
        assert!(mat.structure.accepts(&names[..names.len() - 1]).unwrap());
        assert!(!mat.structure.accepts(&names).unwrap());
    }

    #[test]
    fn lazy_hidden_composition_matches_materialized_pipeline() {
        // Same scenario as compose_pipeline_and_hide_internal, via the lazy
        // path: equal verdicts both directions, strictly fewer states
        // (the composite is never materialized).
        let mut s1 = TraceStructure::new();
        let ar = s1.add_symbol("a_req", Dir::Input);
        let mr = s1.add_symbol("m_req", Dir::Output);
        let ma = s1.add_symbol("m_ack", Dir::Input);
        let aa = s1.add_symbol("a_ack", Dir::Output);
        let (q1, q2, q3) = (s1.add_state(), s1.add_state(), s1.add_state());
        s1.add_transition(0, ar, q1);
        s1.add_transition(q1, mr, q2);
        s1.add_transition(q2, ma, q3);
        s1.add_transition(q3, aa, 0);
        let mut s2 = TraceStructure::new();
        let mr2 = s2.add_symbol("m_req", Dir::Input);
        let ma2 = s2.add_symbol("m_ack", Dir::Output);
        let p1 = s2.add_state();
        s2.add_transition(0, mr2, p1);
        s2.add_transition(p1, ma2, 0);
        let mut spec = TraceStructure::new();
        let sa = spec.add_symbol("a_req", Dir::Input);
        let sb = spec.add_symbol("a_ack", Dir::Output);
        let t1 = spec.add_state();
        spec.add_transition(0, sa, t1);
        spec.add_transition(t1, sb, 0);

        let mut lazy = HiddenComposition::new(&s1, &s2, &["m_req", "m_ack"]).unwrap();
        let fwd = lazy.conforms_to(&spec).unwrap();
        let bwd = lazy.conformed_by(&spec).unwrap();
        assert!(fwd.ok && bwd.ok);

        let materialized = s1
            .compose(&s2)
            .unwrap()
            .structure
            .hide(&["m_req", "m_ack"])
            .unwrap();
        assert!(materialized.equivalent_to(&spec).unwrap());
        // The lazy path materializes the same determinized states as the
        // hide() subset construction, at most.
        assert!(lazy.subset_states() <= materialized.num_states());

        // A wrong spec must be rejected identically, with a witness.
        let mut wrong = TraceStructure::new();
        let wa = wrong.add_symbol("a_req", Dir::Input);
        let wb = wrong.add_symbol("a_ack", Dir::Output);
        let w1 = wrong.add_state();
        wrong.add_transition(0, wb, w1); // acks before any request
        wrong.add_transition(w1, wa, 0);
        let mut lazy2 = HiddenComposition::new(&s1, &s2, &["m_req", "m_ack"]).unwrap();
        let fwd2 = lazy2.conforms_to(&wrong).unwrap();
        let bwd2 = lazy2.conformed_by(&wrong).unwrap();
        assert_eq!(fwd2.ok, materialized.conforms_to(&wrong).unwrap());
        assert_eq!(bwd2.ok, wrong.conforms_to(&materialized).unwrap());
        assert!(!(fwd2.ok && bwd2.ok));
        assert!(fwd2.counterexample.is_some() || bwd2.counterexample.is_some());
    }

    #[test]
    fn hidden_composition_propagates_setup_errors() {
        let t = handshake_echo();
        assert!(matches!(
            HiddenComposition::new(&t, &t.mirror(), &["zap"]),
            Err(TraceError::UnknownSymbol { .. })
        ));
        let mut a = TraceStructure::new();
        a.add_symbol("x", Dir::Output);
        let mut b = TraceStructure::new();
        b.add_symbol("x", Dir::Output);
        assert!(matches!(
            HiddenComposition::new(&a, &b, &[]),
            Err(TraceError::OutputConflict { .. })
        ));
    }
}
