#![warn(missing_docs)]
//! # bmbe-trace
//!
//! A Dill-style trace-theory engine — the reproduction's stand-in for AVER
//! [Dill 1989; Dill, Nowick & Sproull 1992], used to verify the clustering
//! optimizations exactly as in §4.3 of the paper: compose the two original
//! controllers, hide the activation channel, and check conformance
//! equivalence against the optimized merged controller.
//!
//! The central type is [`automaton::TraceStructure`]; see its documentation
//! for the receptive-failure semantics.
//!
//! **Precondition note:** composition records reachable failures in
//! [`automaton::Composite::failure_reachable`]. Check that flag before
//! hiding or re-composing a composite — a composite carrying failures has
//! them represented only by that flag.
pub mod automaton;

pub use automaton::{Composite, Dir, HiddenComposition, OtfOutcome, TraceError, TraceStructure};
