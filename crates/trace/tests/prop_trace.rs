//! Property-based tests of the trace-structure engine.

use bmbe_trace::{Dir, TraceStructure};
use proptest::prelude::*;

/// A random small deterministic trace structure: a handful of states with
/// transitions over a fixed 4-symbol alphabet (2 in, 2 out).
fn arb_ts() -> impl Strategy<Value = TraceStructure> {
    let states = 1usize..5;
    (
        states,
        proptest::collection::vec((0usize..4, 0usize..4, 0usize..4), 0..12),
    )
        .prop_map(|(n, edges)| {
            let mut t = TraceStructure::new();
            let i0 = t.add_symbol("i0", Dir::Input);
            let i1 = t.add_symbol("i1", Dir::Input);
            let o0 = t.add_symbol("o0", Dir::Output);
            let o1 = t.add_symbol("o1", Dir::Output);
            let syms = [i0, i1, o0, o1];
            for _ in 1..n {
                t.add_state();
            }
            for (from, sym, to) in edges {
                t.add_transition(from % n, syms[sym], to % n);
            }
            t
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conformance is reflexive: every module can substitute for itself.
    #[test]
    fn conformance_is_reflexive(t in arb_ts()) {
        prop_assert!(t.conforms_to(&t).expect("same alphabet"));
    }

    /// Mirroring twice is the identity on directions.
    #[test]
    fn mirror_is_an_involution(t in arb_ts()) {
        let mm = t.mirror().mirror();
        for (a, b) in t.symbols().iter().zip(mm.symbols()) {
            prop_assert_eq!(a, b);
        }
    }

    /// Hiding all output symbols keeps input-only acceptance consistent:
    /// any accepted visible trace of the original stays accepted.
    #[test]
    fn hiding_preserves_visible_acceptance(t in arb_ts()) {
        let hidden = t.hide(&["o0", "o1"]).expect("outputs are hidable");
        // A couple of short input-only traces.
        for trace in [vec!["i0"], vec!["i1"], vec!["i0", "i1"]] {
            if t.accepts(&trace).expect("alphabet") {
                prop_assert!(hidden.accepts(&trace).expect("alphabet"),
                    "hidden structure lost trace {trace:?}");
            }
        }
    }

    /// Composition with a universal partner (accepts everything) never
    /// introduces output-choke failures.
    #[test]
    fn composing_with_chaos_is_failure_free(t in arb_ts()) {
        // Chaos: one state, accepts every symbol as INPUT (it never drives).
        let mut chaos = TraceStructure::new();
        for (name, _) in t.symbols().to_vec() {
            let s = chaos.add_symbol(name, Dir::Input);
            chaos.add_transition(0, s, 0);
        }
        // Output conflicts can't happen: chaos only has inputs.
        let composite = t.compose(&chaos).expect("no conflicts");
        prop_assert!(!composite.failure_reachable);
    }
}
