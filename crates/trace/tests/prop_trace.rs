//! Property-based tests of the trace-structure engine.

use bmbe_trace::{Dir, HiddenComposition, TraceStructure};
use proptest::prelude::*;

/// A random small deterministic trace structure: a handful of states with
/// transitions over a fixed 4-symbol alphabet (2 in, 2 out).
fn arb_ts() -> impl Strategy<Value = TraceStructure> {
    let states = 1usize..5;
    (
        states,
        proptest::collection::vec((0usize..4, 0usize..4, 0usize..4), 0..12),
    )
        .prop_map(|(n, edges)| {
            let mut t = TraceStructure::new();
            let i0 = t.add_symbol("i0", Dir::Input);
            let i1 = t.add_symbol("i1", Dir::Input);
            let o0 = t.add_symbol("o0", Dir::Output);
            let o1 = t.add_symbol("o1", Dir::Output);
            let syms = [i0, i1, o0, o1];
            for _ in 1..n {
                t.add_state();
            }
            for (from, sym, to) in edges {
                t.add_transition(from % n, syms[sym], to % n);
            }
            t
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conformance is reflexive: every module can substitute for itself.
    #[test]
    fn conformance_is_reflexive(t in arb_ts()) {
        prop_assert!(t.conforms_to(&t).expect("same alphabet"));
    }

    /// Mirroring twice is the identity on directions.
    #[test]
    fn mirror_is_an_involution(t in arb_ts()) {
        let mm = t.mirror().mirror();
        for (a, b) in t.symbols().iter().zip(mm.symbols()) {
            prop_assert_eq!(a, b);
        }
    }

    /// Hiding all output symbols keeps input-only acceptance consistent:
    /// any accepted visible trace of the original stays accepted.
    #[test]
    fn hiding_preserves_visible_acceptance(t in arb_ts()) {
        let hidden = t.hide(&["o0", "o1"]).expect("outputs are hidable");
        // A couple of short input-only traces.
        for trace in [vec!["i0"], vec!["i1"], vec!["i0", "i1"]] {
            if t.accepts(&trace).expect("alphabet") {
                prop_assert!(hidden.accepts(&trace).expect("alphabet"),
                    "hidden structure lost trace {trace:?}");
            }
        }
    }

    /// Composition with a universal partner (accepts everything) never
    /// introduces output-choke failures.
    #[test]
    fn composing_with_chaos_is_failure_free(t in arb_ts()) {
        // Chaos: one state, accepts every symbol as INPUT (it never drives).
        let mut chaos = TraceStructure::new();
        for (name, _) in t.symbols().to_vec() {
            let s = chaos.add_symbol(name, Dir::Input);
            chaos.add_transition(0, s, 0);
        }
        // Output conflicts can't happen: chaos only has inputs.
        let composite = t.compose(&chaos).expect("no conflicts");
        prop_assert!(!composite.failure_reachable);
    }

    /// On-the-fly conformance reaches the same verdict as the materialized
    /// product, and yields a witness exactly when it rejects.
    #[test]
    fn otf_conformance_agrees_with_materialized(a in arb_ts(), b in arb_ts()) {
        let otf = a.conforms_to_otf(&b).expect("same alphabet");
        let materialized = a.conforms_to(&b).expect("same alphabet");
        prop_assert_eq!(otf.ok, materialized);
        prop_assert_eq!(otf.ok, otf.counterexample.is_none());
        if let Some(witness) = &otf.counterexample {
            prop_assert!(!witness.is_empty());
        }
    }

    /// On-the-fly failure search agrees with materialized composition on
    /// failure reachability and never explores more states than the
    /// materialized composite holds.
    #[test]
    fn otf_failure_search_agrees_with_compose(a in arb_ts(), b in arb_ts()) {
        // Mirror one side so the alphabets are complementary (composing two
        // structures that both drive o0/o1 is an output conflict).
        let partner = b.mirror();
        let otf = a.failure_search(&partner).expect("complementary alphabets");
        let composite = a.compose(&partner).expect("complementary alphabets");
        prop_assert_eq!(otf.ok, !composite.failure_reachable);
        prop_assert!(otf.states_visited <= composite.structure.num_states());
    }
}

/// A random trace structure over a caller-chosen alphabet.
fn arb_ts_over(
    symbols: Vec<(&'static str, Dir)>,
) -> impl Strategy<Value = TraceStructure> {
    let k = symbols.len();
    (
        1usize..5,
        proptest::collection::vec((0usize..4, 0usize..k, 0usize..4), 0..12),
    )
        .prop_map(move |(n, edges)| {
            let mut t = TraceStructure::new();
            let syms: Vec<usize> = symbols
                .iter()
                .map(|&(name, dir)| t.add_symbol(name, dir))
                .collect();
            for _ in 1..n {
                t.add_state();
            }
            for (from, sym, to) in edges {
                t.add_transition(from % n, syms[sym], to % n);
            }
            t
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The lazy hidden composition reaches the same conformance verdicts in
    /// both directions as materializing compose + hide.
    #[test]
    fn lazy_pipeline_agrees_with_materialized(
        a in arb_ts_over(vec![("i", Dir::Input), ("m", Dir::Output)]),
        b in arb_ts_over(vec![("m", Dir::Input), ("o", Dir::Output)]),
        spec in arb_ts_over(vec![("i", Dir::Input), ("o", Dir::Output)]),
    ) {
        let mut hc = HiddenComposition::new(&a, &b, &["m"]).expect("composable");
        let fwd = hc.conforms_to(&spec).expect("matching alphabet");
        let bwd = hc.conformed_by(&spec).expect("matching alphabet");

        let hidden = a
            .compose(&b)
            .expect("composable")
            .structure
            .hide(&["m"])
            .expect("m is a composite output");
        prop_assert_eq!(fwd.ok, hidden.conforms_to(&spec).expect("matching alphabet"));
        prop_assert_eq!(bwd.ok, spec.conforms_to(&hidden).expect("matching alphabet"));
        prop_assert!(hc.subset_states() >= 1, "at least the initial subset is interned");
    }
}
