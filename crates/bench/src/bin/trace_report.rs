//! Fleet critical-path analyzer: loads one or more self-describing JSONL
//! trace streams (as written by the traced report bins — each process'
//! stream opens with a `{"kind": "meta", "run": ...}` line, so
//! concatenating cold and warm fleet traces yields one logical merged
//! trace), reconstructs the span forest, and prints the fleet critical
//! path, the per-phase wall/self split, and the per-shape singleflight
//! wait attribution as one JSON object on stdout.
//!
//! ```text
//! trace_report [--check] FILE...
//! ```
//!
//! `--check` additionally validates every input line as JSON
//! (`bmbe_obs::export::validate_json`) and requires a non-empty critical
//! path, exiting non-zero on the first violation. This is the gate the
//! tier-1 CI script runs over a merged cold+warm batch fleet trace.
//!
//! Human-readable narration goes to stderr (`BMBE_VERBOSE=1`); stdout is
//! pure JSON.

use bmbe_bench::report::{escape, run_main};
use bmbe_obs::analyze::parse_merged;
use bmbe_obs::export::validate_json;
use std::fmt::Write as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    run_main("trace_report", run)
}

fn run() -> Result<bool, String> {
    bmbe_obs::init_from_env();
    let mut check = false;
    let mut files: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => check = true,
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        return Err("usage: trace_report [--check] FILE...".to_string());
    }

    // Merge = concatenation: each stream's meta line re-keys subsequent
    // spans to its own run, so file order only affects presentation.
    let mut merged = String::new();
    for file in &files {
        let text =
            std::fs::read_to_string(file).map_err(|e| format!("read {file}: {e}"))?;
        if check {
            for (n, line) in text.lines().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                if let Err((at, e)) = validate_json(line) {
                    return Err(format!(
                        "--check: {file} line {}: byte {at}: {e}",
                        n + 1
                    ));
                }
            }
        }
        merged.push_str(&text);
        if !merged.ends_with('\n') {
            merged.push('\n');
        }
    }

    let trace = parse_merged(&merged)?;
    let path = trace.critical_path();
    let phases = trace.phase_rows();
    let waits = trace.wait_attribution();
    if check && path.segments.is_empty() {
        return Err("--check: merged trace has an empty critical path".to_string());
    }
    bmbe_obs::vlog!(
        1,
        "{} file(s), {} lines, {} spans across {} run(s); critical path {} segments / {} ns",
        files.len(),
        trace.lines,
        trace.nodes.len(),
        trace.runs.len(),
        path.segments.len(),
        path.total_ns
    );

    let mut json = String::from("{\n  \"report\": \"trace\",\n");
    let _ = write!(json, "  \"files\": [");
    for (i, file) in files.iter().enumerate() {
        let _ = write!(json, "{}\"{}\"", if i > 0 { ", " } else { "" }, escape(file));
    }
    let _ = writeln!(json, "],");
    let _ = write!(json, "  \"runs\": [");
    for (i, run) in trace.runs.iter().enumerate() {
        let _ = write!(json, "{}\"{run:016x}\"", if i > 0 { ", " } else { "" });
    }
    let _ = writeln!(json, "],");
    let _ = writeln!(json, "  \"lines\": {},", trace.lines);
    let _ = writeln!(json, "  \"spans\": {},", trace.nodes.len());
    let _ = writeln!(json, "  \"checked\": {check},");

    let _ = writeln!(
        json,
        "  \"critical_path\": {{\"total_ns\": {}, \"segments\": [",
        path.total_ns
    );
    for (i, seg) in path.segments.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"run\": \"{:016x}\", \"dur_ns\": {}, \"self_ns\": {}}}",
            escape(&seg.name),
            seg.run,
            seg.dur_ns,
            seg.self_ns
        );
        json.push_str(if i + 1 < path.segments.len() { ",\n" } else { "\n" });
    }
    let _ = writeln!(json, "  ]}},");

    let _ = writeln!(json, "  \"phases\": [");
    for (i, row) in phases.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"count\": {}, \"wall_ns\": {}, \"self_ns\": {}}}",
            escape(&row.name),
            row.count,
            row.wall_ns,
            row.self_ns
        );
        json.push_str(if i + 1 < phases.len() { ",\n" } else { "\n" });
    }
    let _ = writeln!(json, "  ],");

    let _ = writeln!(json, "  \"singleflight_waits\": [");
    for (i, row) in waits.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"digest\": \"{:016x}\", \"waits\": {}, \"wait_us\": {}, \"owner_run\": {}, \
             \"owner_dur_ns\": {}, \"owner_hotspot\": {}}}",
            row.digest,
            row.waits,
            row.wait_us,
            row.owner_run
                .map_or("null".to_string(), |r| format!("\"{r:016x}\"")),
            row.owner_dur_ns,
            row.owner_hotspot
                .as_deref()
                .map_or("null".to_string(), |h| format!("\"{}\"", escape(h)))
        );
        json.push_str(if i + 1 < waits.len() { ",\n" } else { "\n" });
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    print!("{json}");
    Ok(true)
}
