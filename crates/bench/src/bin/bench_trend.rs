//! Perf-regression sentinel: diffs freshly generated `BENCH_flow.json` /
//! `BENCH_sim.json` reports against committed baselines and prints a
//! pass/fail verdict JSON on stdout, exiting non-zero when any gate is
//! breached. Gate policies (exact for structural counts, a ratio floor
//! for timing ratios, nothing for absolute seconds) live in
//! [`bmbe_bench::trend`].
//!
//! ```text
//! bench_trend [--flow FRESH] [--baseline-flow BASE]
//!             [--sim FRESH] [--baseline-sim BASE]
//! ```
//!
//! Defaults compare `BENCH_flow.json` / `BENCH_sim.json` in the working
//! directory against themselves (a schema self-check that always passes
//! on intact files); CI points `--flow`/`--sim` at a fresh run's output
//! while the baselines stay at the committed copies.
//!
//! An absent or empty baseline is a structured **no-baseline verdict**,
//! not a parse error: the verdict JSON carries a `no_baseline` array with
//! one explicit reason per affected side and the run exits non-zero —
//! a report added without a committed baseline (as the gauntlet's
//! `BENCH_gauntlet.json` starts life) fails loudly instead of passing
//! vacuously or dying on a read error.
//!
//! Human-readable narration goes to stderr (`BMBE_VERBOSE=1`); stdout is
//! pure JSON.

use bmbe_bench::report::{escape, flag_str, run_main};
use bmbe_bench::trend::{compare, Outcome, Spec, FLOW_SPECS, SIM_SPECS};
use std::fmt::Write as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    run_main("bench_trend", run)
}

/// One comparison side: resolved paths plus its gate table.
struct Side {
    label: &'static str,
    fresh: String,
    baseline: String,
    specs: &'static [Spec],
}

fn run() -> Result<bool, String> {
    bmbe_obs::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sides = [
        Side {
            label: "flow",
            fresh: flag_str(&args, "--flow")?.unwrap_or_else(|| "BENCH_flow.json".to_string()),
            baseline: flag_str(&args, "--baseline-flow")?
                .unwrap_or_else(|| "BENCH_flow.json".to_string()),
            specs: FLOW_SPECS,
        },
        Side {
            label: "sim",
            fresh: flag_str(&args, "--sim")?.unwrap_or_else(|| "BENCH_sim.json".to_string()),
            baseline: flag_str(&args, "--baseline-sim")?
                .unwrap_or_else(|| "BENCH_sim.json".to_string()),
            specs: SIM_SPECS,
        },
    ];

    let mut outcome = Outcome::default();
    let mut compared: Vec<(&'static str, String, String)> = Vec::new();
    for side in &sides {
        // An absent baseline is a structured no-baseline verdict when the
        // side was explicitly requested, and a skip when only the default
        // path is in play *and* the side's fresh report is also absent (a
        // repo may only commit one of the two reports). A fresh report
        // with no baseline behind it must fail loudly.
        let explicit = args.iter().any(|a| {
            a == &format!("--{}", side.label) || a == &format!("--baseline-{}", side.label)
        });
        let baseline = match std::fs::read_to_string(&side.baseline) {
            Ok(text) => text,
            Err(e) => {
                if !explicit && !std::path::Path::new(&side.fresh).exists() {
                    bmbe_obs::vlog!(1, "bench_trend: skipping {}: {e}", side.baseline);
                    continue;
                }
                let reason = format!("{}: baseline {} unreadable: {e}", side.label, side.baseline);
                eprintln!("bench_trend: {reason}");
                outcome.no_baseline.push(reason);
                continue;
            }
        };
        let fresh = std::fs::read_to_string(&side.fresh)
            .map_err(|e| format!("read {}: {e}", side.fresh))?;
        let mut side_outcome = compare(&baseline, &fresh, side.specs);
        // Attribute empty-baseline reasons to the side's file.
        for reason in &mut side_outcome.no_baseline {
            *reason = format!("{}: {} — {reason}", side.label, side.baseline);
        }
        bmbe_obs::vlog!(
            1,
            "bench_trend: {} ({} vs baseline {}): {} metrics checked, {} breach(es)",
            side.label,
            side.fresh,
            side.baseline,
            side_outcome.checked,
            side_outcome.breaches.len()
        );
        for breach in &side_outcome.breaches {
            eprintln!("bench_trend: {}: {breach}", side.label);
        }
        for reason in &side_outcome.no_baseline {
            eprintln!("bench_trend: {reason}");
        }
        compared.push((side.label, side.fresh.clone(), side.baseline.clone()));
        outcome.merge(side_outcome);
    }
    if compared.is_empty() && outcome.no_baseline.is_empty() {
        outcome
            .no_baseline
            .push("no reports to compare (no BENCH_*.json found)".to_string());
        eprintln!("bench_trend: no reports to compare (no BENCH_*.json found)");
    }

    let mut json = String::from("{\n  \"trend\": true,\n");
    let _ = writeln!(json, "  \"pass\": {},", outcome.pass());
    let _ = writeln!(json, "  \"checked\": {},", outcome.checked);
    let _ = writeln!(json, "  \"compared\": [");
    for (i, (label, fresh, baseline)) in compared.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"report\": \"{label}\", \"fresh\": \"{}\", \"baseline\": \"{}\"}}",
            escape(fresh),
            escape(baseline)
        );
        json.push_str(if i + 1 < compared.len() { ",\n" } else { "\n" });
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"no_baseline\": [");
    for (i, reason) in outcome.no_baseline.iter().enumerate() {
        let _ = write!(json, "    \"{}\"", escape(reason));
        json.push_str(if i + 1 < outcome.no_baseline.len() { ",\n" } else { "\n" });
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"breaches\": [");
    for (i, breach) in outcome.breaches.iter().enumerate() {
        let _ = write!(json, "    {}", breach.to_json());
        json.push_str(if i + 1 < outcome.breaches.len() { ",\n" } else { "\n" });
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    print!("{json}");
    Ok(outcome.pass())
}
