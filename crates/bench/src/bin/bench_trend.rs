//! Perf-regression sentinel: diffs freshly generated `BENCH_flow.json` /
//! `BENCH_sim.json` reports against committed baselines and prints a
//! pass/fail verdict JSON on stdout, exiting non-zero when any gate is
//! breached. Gate policies (exact for structural counts, a ratio floor
//! for timing ratios, nothing for absolute seconds) live in
//! [`bmbe_bench::trend`].
//!
//! ```text
//! bench_trend [--flow FRESH] [--baseline-flow BASE]
//!             [--sim FRESH] [--baseline-sim BASE]
//! ```
//!
//! Defaults compare `BENCH_flow.json` / `BENCH_sim.json` in the working
//! directory against themselves (a schema self-check that always passes
//! on intact files); CI points `--flow`/`--sim` at a fresh run's output
//! while the baselines stay at the committed copies. A `--flow`/`--sim`
//! side is skipped entirely when neither its flag nor its default file is
//! present.
//!
//! Human-readable narration goes to stderr (`BMBE_VERBOSE=1`); stdout is
//! pure JSON.

use bmbe_bench::report::{escape, flag_str, run_main};
use bmbe_bench::trend::{compare, Outcome, Spec, FLOW_SPECS, SIM_SPECS};
use std::fmt::Write as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    run_main("bench_trend", run)
}

/// One comparison side: resolved paths plus its gate table.
struct Side {
    label: &'static str,
    fresh: String,
    baseline: String,
    specs: &'static [Spec],
}

fn run() -> Result<bool, String> {
    bmbe_obs::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sides = [
        Side {
            label: "flow",
            fresh: flag_str(&args, "--flow")?.unwrap_or_else(|| "BENCH_flow.json".to_string()),
            baseline: flag_str(&args, "--baseline-flow")?
                .unwrap_or_else(|| "BENCH_flow.json".to_string()),
            specs: FLOW_SPECS,
        },
        Side {
            label: "sim",
            fresh: flag_str(&args, "--sim")?.unwrap_or_else(|| "BENCH_sim.json".to_string()),
            baseline: flag_str(&args, "--baseline-sim")?
                .unwrap_or_else(|| "BENCH_sim.json".to_string()),
            specs: SIM_SPECS,
        },
    ];

    let mut outcome = Outcome::default();
    let mut compared: Vec<(&'static str, String, String)> = Vec::new();
    for side in &sides {
        // A missing *default* baseline just skips the side (a repo may
        // only commit one of the two reports); an explicitly requested
        // file that cannot be read is an error.
        let explicit = args.iter().any(|a| {
            a == &format!("--{}", side.label) || a == &format!("--baseline-{}", side.label)
        });
        let baseline = match std::fs::read_to_string(&side.baseline) {
            Ok(text) => text,
            Err(e) if !explicit => {
                bmbe_obs::vlog!(1, "bench_trend: skipping {}: {e}", side.baseline);
                continue;
            }
            Err(e) => return Err(format!("read {}: {e}", side.baseline)),
        };
        let fresh = std::fs::read_to_string(&side.fresh)
            .map_err(|e| format!("read {}: {e}", side.fresh))?;
        let side_outcome = compare(&baseline, &fresh, side.specs);
        bmbe_obs::vlog!(
            1,
            "bench_trend: {} ({} vs baseline {}): {} metrics checked, {} breach(es)",
            side.label,
            side.fresh,
            side.baseline,
            side_outcome.checked,
            side_outcome.breaches.len()
        );
        for breach in &side_outcome.breaches {
            eprintln!("bench_trend: {}: {breach}", side.label);
        }
        compared.push((side.label, side.fresh.clone(), side.baseline.clone()));
        outcome.merge(side_outcome);
    }
    if compared.is_empty() {
        return Err("no reports to compare (no BENCH_*.json found)".to_string());
    }

    let mut json = String::from("{\n  \"trend\": true,\n");
    let _ = writeln!(json, "  \"pass\": {},", outcome.pass());
    let _ = writeln!(json, "  \"checked\": {},", outcome.checked);
    let _ = writeln!(json, "  \"compared\": [");
    for (i, (label, fresh, baseline)) in compared.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"report\": \"{label}\", \"fresh\": \"{}\", \"baseline\": \"{}\"}}",
            escape(fresh),
            escape(baseline)
        );
        json.push_str(if i + 1 < compared.len() { ",\n" } else { "\n" });
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"breaches\": [");
    for (i, breach) in outcome.breaches.iter().enumerate() {
        let _ = write!(json, "    {}", breach.to_json());
        json.push_str(if i + 1 < outcome.breaches.len() { ",\n" } else { "\n" });
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    print!("{json}");
    Ok(outcome.pass())
}
