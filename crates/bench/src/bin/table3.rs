//! Regenerates Table 3: speed and area of the four benchmark designs,
//! unoptimized vs optimized, with the paper's numbers alongside.
//!
//! Run with `--release`; the debug build is an order of magnitude slower.

use bmbe_bench::paper::TABLE3;
use bmbe_designs::all_designs;
use bmbe_flow::{run_design_with, ControllerCache};
use bmbe_gates::Library;
use bmbe_sim::prims::Delays;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            // The single structured error line; the table stays on stdout.
            eprintln!("error: table3: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let library = Library::cmos035();
    let delays = Delays::default();
    // One cache for the whole table: shapes shared between designs and
    // between the unoptimized/optimized sides are synthesized once.
    // BMBE_FAULT reaches the flows through compare_with (with_env_fault).
    let cache = ControllerCache::new();
    let designs = all_designs().map_err(|e| format!("shipped designs: {e}"))?;
    println!("Table 3: Experimental Results (measured vs paper)");
    println!(
        "{:<22} {:>10} {:>10} {:>8} {:>7} | {:>10} {:>10} {:>8} {:>7}",
        "", "unopt ns", "opt ns", "impr %", "paper", "unopt um2", "opt um2", "ovhd %", "paper"
    );
    for (design, paper) in designs.iter().zip(TABLE3.iter()) {
        let c = run_design_with(design, &library, &delays, &cache)
            .map_err(|e| format!("{}: {e}", design.name))?;
        println!(
            "{:<22} {:>10.2} {:>10.2} {:>8.2} {:>7.2} | {:>10.0} {:>10.0} {:>8.2} {:>7.2}",
            design.name,
            c.unopt_run.time_ns,
            c.opt_run.time_ns,
            c.speed_improvement(),
            paper.improvement,
            c.unopt_area(),
            c.opt_area(),
            c.area_overhead(),
            paper.overhead
        );
    }
    println!();
    let stats = cache.stats();
    println!(
        "(controller cache: {} unique shapes synthesized, {} instances served from cache)",
        stats.misses, stats.hits
    );
    println!("(absolute values are not comparable: the paper used the AMS 0.35um");
    println!(" library with post-layout back-annotation; see DESIGN.md substitutions.");
    println!(" The shape to check: positive improvements ordered control-dominated");
    println!(" -> datapath-dominated, with area overhead on every design.)");
    Ok(())
}
