//! Ablation: T1-only vs T1+T2 clustering — channels eliminated and final
//! controller counts per design.

use bmbe_core::{balsa_to_ch, ClusterOptions};
use bmbe_designs::all_designs;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: ablation_clustering: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    println!("Ablation: clustering depth");
    println!(
        "{:<22} {:>6} {:>16} {:>16} {:>10}",
        "design", "before", "T1 (elim/left)", "T1+T2 (elim/left)", "calls dist."
    );
    for design in all_designs().map_err(|e| format!("shipped designs: {e}"))? {
        let base = balsa_to_ch(&design.compiled.netlist)
            .map_err(|e| format!("{}: translate: {e}", design.name))?;
        let before = base.components.len();
        let mut t1 = base.clone();
        let r1 = t1.t1_clustering(&ClusterOptions::default());
        let mut t2 = base.clone();
        let r2 = t2.t2_clustering(&ClusterOptions::default());
        println!(
            "{:<22} {:>6} {:>9}/{:<6} {:>10}/{:<6} {:>10}",
            design.name,
            before,
            r1.eliminated_channels.len(),
            t1.components.len(),
            r2.eliminated_channels.len(),
            t2.components.len(),
            r2.distributed_calls.len()
        );
    }
    Ok(())
}
