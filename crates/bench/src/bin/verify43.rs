//! Reruns the §4.3 experiment: formal verification of Activation Channel
//! Removal over every legal operator combination, via trace-theory
//! composition, hiding and conformance equivalence (the paper's AVER flow).

use bmbe_core::opt::verify::{run_acr_experiment, AcrVerdict};

fn main() {
    let rows = run_acr_experiment().expect("verification machinery runs");
    println!("SS 4.3 experiment: Activation Channel Removal verification");
    println!("{:<14} {:<14} verdict", "activating op", "activated op");
    let mut bad = 0;
    for row in &rows {
        println!(
            "{:<14} {:<14} {}",
            row.op_activating.keyword(),
            row.op_activated.keyword(),
            row.verdict
        );
        if row.verdict.is_mismatch() {
            bad += 1;
        }
    }
    println!(
        "{} combinations checked, {} equivalent, {} rejected, {} NOT equivalent",
        rows.len(),
        rows.iter()
            .filter(|r| r.verdict == AcrVerdict::Equivalent)
            .count(),
        rows.iter()
            .filter(|r| matches!(r.verdict, AcrVerdict::MergeRejected(_)))
            .count(),
        bad
    );
    assert_eq!(bad, 0, "optimizer must be behaviour-preserving");
}
