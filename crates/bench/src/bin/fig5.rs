//! Regenerates Fig. 5: Call Distribution applied to a sequencer whose both
//! branches activate a 2-way call.

use bmbe_bench::paper::FIG5_RESULT_STATES;
use bmbe_core::compile::compile_to_bm;
use bmbe_core::components::{call, sequencer};
use bmbe_core::opt::cluster::{ClusterOptions, CtrlNetlist};

fn main() {
    let mut netlist = CtrlNetlist::new();
    netlist.add("seq", sequencer("a", &["b1".into(), "b2".into()]));
    netlist.add("call", call(&["b1".into(), "b2".into()], "c"));
    let report = netlist.t2_clustering(&ClusterOptions::default());
    println!("clustering: {report}");
    assert_eq!(
        netlist.components.len(),
        1,
        "everything clusters into one controller"
    );
    let spec = compile_to_bm("result", &netlist.components[0].program).expect("compiles");
    println!(
        "--- result: {} states (paper: {FIG5_RESULT_STATES}) {}",
        spec.num_states(),
        if spec.num_states() == FIG5_RESULT_STATES {
            "MATCH"
        } else {
            "MISMATCH"
        }
    );
    print!("{spec}");
}
