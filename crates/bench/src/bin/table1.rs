//! Regenerates Table 1: legal combinations of operators and argument
//! activities under the Burst-Mode aware restrictions.

use bmbe_core::ast::{legal, ChActivity, InterleaveOp};

fn main() {
    use ChActivity::{Active, Passive};
    println!("Table 1: Legal Combinations of Operators and Arguments");
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8}",
        "Operator", "act/act", "act/pas", "pas/act", "pas/pas"
    );
    for op in InterleaveOp::ALL {
        let cell = |a, b| if legal(op, a, b) { "Yes" } else { "No" };
        println!(
            "{:<12} {:>8} {:>8} {:>8} {:>8}",
            op.keyword(),
            cell(Active, Active),
            cell(Active, Passive),
            cell(Passive, Active),
            cell(Passive, Passive)
        );
    }
}
