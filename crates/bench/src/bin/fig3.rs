//! Regenerates Fig. 3: the Burst-Mode specifications of the sequencer,
//! call and passivator compiled from their CH programs, with the paper's
//! state counts checked.

use bmbe_bench::paper::FIG3_STATES;
use bmbe_core::compile::compile_to_bm;
use bmbe_core::components::{call, passivator, sequencer};

fn main() {
    let progs = vec![
        ("sequencer", sequencer("p", &["a1".into(), "a2".into()])),
        ("call", call(&["a1".into(), "a2".into()], "b")),
        ("passivator", passivator("a", "b")),
    ];
    for (name, ch) in progs {
        let spec = compile_to_bm(name, &ch).expect("shipped programs compile");
        let expected = FIG3_STATES
            .iter()
            .find(|(n, _)| *n == name)
            .expect("known")
            .1;
        println!(
            "--- {name}: {} states (paper: {expected}) {}",
            spec.num_states(),
            if spec.num_states() == expected {
                "MATCH"
            } else {
                "MISMATCH"
            }
        );
        print!("{spec}");
        println!();
    }
}
