//! Checking-side performance report: times the event-wheel scheduler
//! against the seed's binary-heap scheduler on every benchmark scenario
//! (asserting identical simulated outcomes), compares on-the-fly against
//! materialized ACR trace verification, and writes `BENCH_sim.json`.
//!
//! Run with `--release`; the debug build is an order of magnitude slower.
//!
//! Stdout carries the pure JSON report (the same text written to
//! `BENCH_sim.json`); the human-readable tables go to **stderr** via
//! `bmbe_obs::vlog!` at verbosity ≥ 1 (`BMBE_VERBOSE=1`).

use bmbe_bench::report::{emit_report, run_main};
use bmbe_core::components::{decision_wait, sequencer};
use bmbe_core::opt::verify_acr_compared;
use bmbe_designs::{all_designs, scenario_variants};
use bmbe_flow::{
    run_control_flow, simulate_scenarios, simulate_with, to_flow_scenario, FaultPlan, FlowOptions,
    FlowResult, Scenario, SimBackend, SimOutcome,
};
use bmbe_gates::Library;
use bmbe_sim::prims::Delays;
use bmbe_sim::{SchedulerKind, LANES};
use std::fmt::Write as _;
use std::process::ExitCode;

const SAMPLES: usize = 9;
/// Samples for the batched backend comparison (64 event runs per sample on
/// the wheel side make each sample an order of magnitude heavier).
const BATCH_SAMPLES: usize = 5;

struct SchedNumbers {
    wall_s: f64,
    total_s: f64,
    events_per_sec: f64,
    peak_queue_depth: usize,
}

struct Row {
    design: String,
    events: u64,
    wheel: SchedNumbers,
    heap: SchedNumbers,
    /// Run-loop events/sec of the pre-wheel engine, from
    /// `BENCH_sim_baseline.json` (measured at the commit before this
    /// change), when that file is present.
    baseline_events_per_sec: Option<f64>,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.wheel.events_per_sec / self.heap.events_per_sec
    }

    /// Run-loop throughput gain over the pre-change engine.
    fn speedup_vs_baseline(&self) -> Option<f64> {
        Some(self.wheel.events_per_sec / self.baseline_events_per_sec?)
    }
}

/// Pulls `"field": <number>` out of `text` after position `from`.
fn field_after(text: &str, from: usize, field: &str) -> Option<f64> {
    let needle = format!("\"{field}\":");
    let at = text[from..].find(&needle)? + from + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Reads the pre-change engine's throughput for one design from
/// `BENCH_sim_baseline.json`. Tolerant by construction: a missing file,
/// design, or field simply yields `None`.
fn baseline_events_per_sec(design: &str) -> Option<f64> {
    let text = std::fs::read_to_string("BENCH_sim_baseline.json").ok()?;
    let at = text.find(&format!("\"design\": \"{design}\""))?;
    field_after(&text, at, "run_loop_events_per_sec")
}

/// Runs one scenario `SAMPLES` times per scheduler, interleaved so host
/// drift lands on both equally, and keeps the median run-loop wall time.
fn measure(
    design: &bmbe_designs::scenarios::Design,
    flow: &FlowResult,
    scenario: &Scenario,
    delays: &Delays,
) -> Result<Row, String> {
    let run_one = |kind: SchedulerKind| -> Result<(SimOutcome, f64), String> {
        let start = std::time::Instant::now();
        let run = simulate_with(&design.compiled, flow, scenario, delays, kind)
            .map_err(|e| format!("{} sim: {e}", design.name))?;
        let total_s = start.elapsed().as_secs_f64();
        if !run.completed {
            return Err(format!("{}: scenario did not complete", design.name));
        }
        Ok((run, total_s))
    };
    // Warm-up, and the outcome-identity check the numbers depend on.
    let (wheel_ref, _) = run_one(SchedulerKind::Wheel)?;
    let (heap_ref, _) = run_one(SchedulerKind::Heap)?;
    if !wheel_ref.same_result(&heap_ref) {
        return Err(format!(
            "{}: wheel and heap schedulers disagree",
            design.name
        ));
    }
    let mut walls = [Vec::with_capacity(SAMPLES), Vec::with_capacity(SAMPLES)];
    let mut totals = [Vec::with_capacity(SAMPLES), Vec::with_capacity(SAMPLES)];
    for _ in 0..SAMPLES {
        for (i, kind) in [SchedulerKind::Wheel, SchedulerKind::Heap].into_iter().enumerate() {
            let (run, total_s) = run_one(kind)?;
            walls[i].push(run.stats.wall_s);
            totals[i].push(total_s);
        }
    }
    for w in walls.iter_mut().chain(totals.iter_mut()) {
        w.sort_by(f64::total_cmp);
    }
    let events = wheel_ref.events;
    let numbers = |wall_s: f64, total_s: f64, reference: &SimOutcome| SchedNumbers {
        wall_s,
        total_s,
        events_per_sec: events as f64 / wall_s,
        peak_queue_depth: reference.stats.peak_queue_depth,
    };
    Ok(Row {
        design: design.name.to_string(),
        events,
        wheel: numbers(walls[0][SAMPLES / 2], totals[0][SAMPLES / 2], &wheel_ref),
        heap: numbers(walls[1][SAMPLES / 2], totals[1][SAMPLES / 2], &heap_ref),
        baseline_events_per_sec: baseline_events_per_sec(design.name),
    })
}

/// One design's batched compiled-vs-wheel comparison: the same 64-scenario
/// batch end to end on each backend, single worker thread.
struct BackendRow {
    design: String,
    lanes: usize,
    /// Oracle aggregate event count across the batch — the common work
    /// unit both throughput figures divide, so their ratio is a pure
    /// wall-time ratio on identical work.
    events: u64,
    compiled_wall_s: f64,
    wheel_wall_s: f64,
}

impl BackendRow {
    fn compiled_events_per_sec(&self) -> f64 {
        self.events as f64 / self.compiled_wall_s
    }

    fn wheel_events_per_sec(&self) -> f64 {
        self.events as f64 / self.wheel_wall_s
    }

    fn speedup(&self) -> f64 {
        self.wheel_wall_s / self.compiled_wall_s
    }
}

/// Runs the design's 64-variant scenario batch on the compiled backend and
/// the event wheel, asserting per-lane behavioural parity with the oracle
/// before any timing, then keeps the median end-to-end wall of
/// `BATCH_SAMPLES` interleaved runs per backend.
fn measure_backends(
    design: &bmbe_designs::scenarios::Design,
    flow: &FlowResult,
    delays: &Delays,
    fault: Option<&FaultPlan>,
) -> Result<BackendRow, String> {
    let seed = design.name.bytes().map(u64::from).sum::<u64>() * 0x9e37_79b9;
    let scenarios: Vec<Scenario> = scenario_variants(design, LANES, seed)
        .iter()
        .map(to_flow_scenario)
        .collect();
    let run_batch = |backend: SimBackend| -> Result<(Vec<SimOutcome>, f64), String> {
        let start = std::time::Instant::now();
        let runs = simulate_scenarios(&design.compiled, flow, &scenarios, delays, backend, 1, fault);
        let wall_s = start.elapsed().as_secs_f64();
        let runs: Vec<SimOutcome> = runs
            .into_iter()
            .map(|r| r.map_err(|e| format!("{} {}: {e}", design.name, backend.name())))
            .collect::<Result<_, _>>()?;
        Ok((runs, wall_s))
    };
    // Warm-up, and the per-lane parity assertion the numbers depend on:
    // every compiled lane must reproduce its event-oracle behaviour.
    let (compiled_ref, _) = run_batch(SimBackend::Compiled)?;
    let (wheel_ref, _) = run_batch(SimBackend::EventWheel)?;
    for (lane, (c, o)) in compiled_ref.iter().zip(&wheel_ref).enumerate() {
        if !o.completed {
            return Err(format!("{}: oracle lane {lane} incomplete", design.name));
        }
        if !c.same_behaviour(o) {
            return Err(format!(
                "{}: compiled lane {lane} diverged from the event-wheel oracle",
                design.name
            ));
        }
    }
    let mut walls = [Vec::with_capacity(BATCH_SAMPLES), Vec::with_capacity(BATCH_SAMPLES)];
    for _ in 0..BATCH_SAMPLES {
        for (i, backend) in [SimBackend::Compiled, SimBackend::EventWheel]
            .into_iter()
            .enumerate()
        {
            let (_, wall_s) = run_batch(backend)?;
            walls[i].push(wall_s);
        }
    }
    for w in &mut walls {
        w.sort_by(f64::total_cmp);
    }
    Ok(BackendRow {
        design: design.name.to_string(),
        lanes: scenarios.len(),
        events: wheel_ref.iter().map(|o| o.events).sum(),
        compiled_wall_s: walls[0][BATCH_SAMPLES / 2],
        wheel_wall_s: walls[1][BATCH_SAMPLES / 2],
    })
}

struct VerifyRow {
    obligation: &'static str,
    otf_states: usize,
    materialized_states: usize,
    verdicts_agree: bool,
}

fn verify_rows() -> Result<Vec<VerifyRow>, String> {
    let dw = decision_wait(
        "a1",
        &["i1".to_string(), "i2".to_string()],
        &["o1".to_string(), "o2".to_string()],
    );
    let seq = sequencer("o2", &["c1".to_string(), "c2".to_string()]);
    let s1 = sequencer("p", &["x".to_string(), "m".to_string()]);
    let s2 = sequencer("m", &["y".to_string(), "z".to_string()]);
    [
        ("decision_wait+sequencer", verify_acr_compared(&dw, &seq, "o2")),
        ("chained_sequencers", verify_acr_compared(&s1, &s2, "m")),
    ]
    .into_iter()
    .map(|(obligation, cmp)| {
        let cmp = cmp.map_err(|e| format!("{obligation}: {e}"))?;
        Ok(VerifyRow {
            obligation,
            otf_states: cmp.otf_states,
            materialized_states: cmp.materialized_states,
            verdicts_agree: cmp.verdict.same_outcome(&cmp.oracle),
        })
    })
    .collect()
}

fn main() -> ExitCode {
    run_main("sim_report", run)
}

fn run() -> Result<bool, String> {
    bmbe_obs::init_from_env();
    let library = Library::cmos035();
    let delays = Delays::default();
    let designs = all_designs().map_err(|e| format!("shipped designs: {e}"))?;
    // The sim-side fault switch (e.g. `BMBE_FAULT=sim_compile:0`): the
    // flow itself also arms it via `with_env_fault`, so either side of
    // the pipeline can be poisoned from the same variable.
    let fault = FaultPlan::from_env();
    let mut rows: Vec<Row> = Vec::with_capacity(designs.len());
    let mut backends: Vec<BackendRow> = Vec::with_capacity(designs.len());
    for design in &designs {
        let flow = run_control_flow(
            &design.compiled,
            &FlowOptions::optimized().with_env_fault(),
            &library,
        )
        .map_err(|e| format!("{} flow: {e}", design.name))?;
        let scenario = to_flow_scenario(&design.scenario);
        rows.push(measure(design, &flow, &scenario, &delays)?);
        backends.push(measure_backends(design, &flow, &delays, fault.as_ref())?);
    }
    let verify = verify_rows()?;

    bmbe_obs::vlog!(
        1,
        "sim perf (median of {SAMPLES} interleaved runs; run loop only)"
    );
    bmbe_obs::vlog!(
        1,
        "{:<22} {:>9} {:>12} {:>14} {:>12} {:>14} {:>8} {:>9}",
        "design",
        "events",
        "wheel s",
        "wheel ev/s",
        "heap s",
        "heap ev/s",
        "vs heap",
        "vs seed"
    );
    for r in &rows {
        let vs_base = r
            .speedup_vs_baseline()
            .map_or_else(|| "-".to_string(), |s| format!("{s:.2}x"));
        bmbe_obs::vlog!(
            1,
            "{:<22} {:>9} {:>12.6} {:>14.0} {:>12.6} {:>14.0} {:>7.2}x {:>9}",
            r.design,
            r.events,
            r.wheel.wall_s,
            r.wheel.events_per_sec,
            r.heap.wall_s,
            r.heap.events_per_sec,
            r.speedup(),
            vs_base
        );
    }
    bmbe_obs::vlog!(
        1,
        "\nbackends (64-scenario batch, end to end, 1 worker thread; median of {BATCH_SAMPLES}):"
    );
    bmbe_obs::vlog!(
        1,
        "{:<22} {:>5} {:>9} {:>12} {:>15} {:>12} {:>15} {:>9}",
        "design",
        "lanes",
        "events",
        "compiled s",
        "compiled ev/s",
        "wheel s",
        "wheel ev/s",
        "vs wheel"
    );
    for r in &backends {
        bmbe_obs::vlog!(
            1,
            "{:<22} {:>5} {:>9} {:>12.6} {:>15.0} {:>12.6} {:>15.0} {:>8.1}x",
            r.design,
            r.lanes,
            r.events,
            r.compiled_wall_s,
            r.compiled_events_per_sec(),
            r.wheel_wall_s,
            r.wheel_events_per_sec(),
            r.speedup()
        );
    }
    bmbe_obs::vlog!(1, "\nverification (states explored, on-the-fly vs materialized):");
    for v in &verify {
        bmbe_obs::vlog!(
            1,
            "{:<28} otf {:>5}  materialized {:>5}  agree {}",
            v.obligation,
            v.otf_states,
            v.materialized_states,
            v.verdicts_agree
        );
    }

    let mut json = String::from("{\n  \"bench\": \"sim_verify\",\n");
    let _ = writeln!(json, "  \"samples\": {SAMPLES},");
    json.push_str(
        "  \"note\": \"events_per_sec_speedup compares the wheel against the in-tree heap \
         oracle in the same build, run loop only; both sides share the controller transition \
         memoization and hoisted done checks added alongside the wheel, and the shipped \
         scenarios idle at queue depth 1-3 where a binary heap is nearly free, so this ratio \
         sits near 1.0 (the sim_kernels ring benchmarks, which isolate the scheduler at \
         steady depth 4/256, show the wheel 1.2-1.4x ahead). \
         events_per_sec_speedup_vs_baseline is the headline before/after: run-loop \
         throughput against the pre-change engine recorded in BENCH_sim_baseline.json \
         (measured at the prior commit, run loop estimated by subtracting an \
         empty-scenario call), capturing scheduler, free-listed action slots, \
         memoization, and done-check hoisting together. The backends section times the \
         same 64-scenario variant batch end to end (compile/build included) on one worker \
         thread per backend; both events_per_sec figures divide the event-wheel oracle's \
         aggregate event count so compiled_vs_wheel is a pure wall-time ratio on identical \
         work. Per-lane behavioural parity between the compiled backend and the wheel \
         oracle is asserted before any timing (a divergence fails this report), not \
         sampled.\",\n",
    );
    json.push_str("  \"designs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"design\": \"{}\", \"events\": {}, \
             \"wheel\": {{\"wall_s\": {:.6}, \"total_s\": {:.6}, \"events_per_sec\": {:.0}, \"peak_queue_depth\": {}}}, \
             \"heap\": {{\"wall_s\": {:.6}, \"total_s\": {:.6}, \"events_per_sec\": {:.0}, \"peak_queue_depth\": {}}}, \
             \"events_per_sec_speedup\": {:.3}",
            r.design,
            r.events,
            r.wheel.wall_s,
            r.wheel.total_s,
            r.wheel.events_per_sec,
            r.wheel.peak_queue_depth,
            r.heap.wall_s,
            r.heap.total_s,
            r.heap.events_per_sec,
            r.heap.peak_queue_depth,
            r.speedup()
        );
        if let (Some(base), Some(vs)) = (r.baseline_events_per_sec, r.speedup_vs_baseline()) {
            let _ = write!(
                json,
                ", \"baseline_events_per_sec\": {base:.0}, \
                 \"events_per_sec_speedup_vs_baseline\": {vs:.3}"
            );
        }
        json.push_str("}");
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n  \"backends\": [\n");
    for (i, r) in backends.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"design\": \"{}\", \"lanes\": {}, \"events\": {}, \
             \"compiled\": {{\"wall_s\": {:.6}, \"events_per_sec\": {:.0}}}, \
             \"wheel\": {{\"wall_s\": {:.6}, \"events_per_sec\": {:.0}}}, \
             \"compiled_vs_wheel\": {:.3}}}",
            r.design,
            r.lanes,
            r.events,
            r.compiled_wall_s,
            r.compiled_events_per_sec(),
            r.wheel_wall_s,
            r.wheel_events_per_sec(),
            r.speedup()
        );
        json.push_str(if i + 1 < backends.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n  \"verification\": [\n");
    for (i, v) in verify.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"obligation\": \"{}\", \"otf_states\": {}, \"materialized_states\": {}, \
             \"verdicts_agree\": {}}}",
            v.obligation, v.otf_states, v.materialized_states, v.verdicts_agree
        );
        json.push_str(if i + 1 < verify.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    emit_report("BENCH_sim.json", &json)?;
    Ok(true)
}
