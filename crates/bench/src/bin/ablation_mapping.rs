//! Ablation for the paper's SS 5/6 observation: mapping the two logic
//! levels separately (three Verilog modules) denies the mapper cross-level
//! merges and costs area.

use bmbe_bm::synth::MinimizeMode;
use bmbe_core::{balsa_to_ch, ClusterOptions};
use bmbe_designs::all_designs;
use bmbe_flow::ControllerCache;
use bmbe_gates::{Library, MapObjective, MapStyle};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: ablation_mapping: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let lib = Library::cmos035();
    // One cache across designs and both mapping styles: each (shape, style)
    // pair is synthesized and mapped once.
    let cache = ControllerCache::new();
    println!("Ablation: split-module vs whole-controller technology mapping (area um2)");
    for design in all_designs().map_err(|e| format!("shipped designs: {e}"))? {
        let mut ctrl = balsa_to_ch(&design.compiled.netlist)
            .map_err(|e| format!("{}: translate: {e}", design.name))?;
        ctrl.t2_clustering(&ClusterOptions::default());
        let mut split = 0.0;
        let mut whole = 0.0;
        for c in &ctrl.components {
            for (style, acc) in [
                (MapStyle::SplitModules, &mut split),
                (MapStyle::WholeController, &mut whole),
            ] {
                let (artifact, _) = cache
                    .get_or_synthesize(
                        &c.program,
                        MinimizeMode::Speed,
                        MapObjective::Area,
                        style,
                        &lib,
                    )
                    .map_err(|e| format!("{}: {e}", c.name))?;
                *acc += artifact.mapped.area;
            }
        }
        println!(
            "{:<22} split {:>8.0}  whole {:>8.0}  (split penalty {:+.1}%)",
            design.name,
            split,
            whole,
            100.0 * (split - whole) / whole.max(1.0)
        );
    }
    let stats = cache.stats();
    println!(
        "(controller cache: {} unique shape/style pairs synthesized, {} served from cache)",
        stats.misses, stats.hits
    );
    Ok(())
}
