//! Ablation for the paper's SS 5/6 observation: mapping the two logic
//! levels separately (three Verilog modules) denies the mapper cross-level
//! merges and costs area.

use bmbe_bm::synth::{synthesize, MinimizeMode};
use bmbe_core::{balsa_to_ch, compile_to_bm, ClusterOptions};
use bmbe_designs::all_designs;
use bmbe_gates::{map, Library, MapObjective, MapStyle, SubjectGraph};
use bmbe_logic::Cover;

fn main() {
    let lib = Library::cmos035();
    println!("Ablation: split-module vs whole-controller technology mapping (area um2)");
    for design in all_designs().expect("designs build") {
        let mut ctrl = balsa_to_ch(&design.compiled.netlist).expect("translates");
        ctrl.t2_clustering(&ClusterOptions::default());
        let mut split = 0.0;
        let mut whole = 0.0;
        for c in &ctrl.components {
            let spec = compile_to_bm(&c.name, &c.program).expect("compiles");
            let syn = synthesize(&spec, MinimizeMode::Speed).expect("synthesizes");
            let functions: Vec<(String, &Cover)> = syn
                .outputs
                .iter()
                .cloned()
                .chain((0..syn.num_state_bits).map(|j| format!("y{j}")))
                .zip(syn.output_covers.iter().chain(syn.next_state_covers.iter()))
                .collect();
            let subject = SubjectGraph::from_covers(syn.num_vars(), &functions);
            split += map(&subject, &lib, MapObjective::Area, MapStyle::SplitModules).area;
            whole += map(&subject, &lib, MapObjective::Area, MapStyle::WholeController).area;
        }
        println!(
            "{:<22} split {:>8.0}  whole {:>8.0}  (split penalty {:+.1}%)",
            design.name,
            split,
            whole,
            100.0 * (split - whole) / whole.max(1.0)
        );
    }
}
