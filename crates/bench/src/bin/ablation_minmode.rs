//! Ablation: Minimalist's speed mode (single-output minimization) vs area
//! mode (shared identical products) — product and literal counts per
//! benchmark controller set.

use bmbe_bm::synth::MinimizeMode;
use bmbe_core::{balsa_to_ch, ClusterOptions};
use bmbe_designs::all_designs;
use bmbe_flow::ControllerCache;
use bmbe_gates::{Library, MapObjective, MapStyle};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: ablation_minmode: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let library = Library::cmos035();
    // Repeated component shapes (across clusters and across designs) are
    // synthesized once through the content-addressed cache.
    let cache = ControllerCache::new();
    println!("Ablation: minimization mode (products / distinct products)");
    for design in all_designs().map_err(|e| format!("shipped designs: {e}"))? {
        let mut ctrl = balsa_to_ch(&design.compiled.netlist)
            .map_err(|e| format!("{}: translate: {e}", design.name))?;
        ctrl.t2_clustering(&ClusterOptions::default());
        let mut total = 0usize;
        let mut distinct = 0usize;
        for c in &ctrl.components {
            let (artifact, _) = cache
                .get_or_synthesize(
                    &c.program,
                    MinimizeMode::Speed,
                    MapObjective::Delay,
                    MapStyle::SplitModules,
                    &library,
                )
                .map_err(|e| format!("{}: {e}", c.name))?;
            total += artifact.controller.num_products();
            distinct += artifact.controller.num_distinct_products();
        }
        println!(
            "{:<22} speed-mode products {:>4}, shareable (area mode) {:>4}  ({:.1}% duplication)",
            design.name,
            total,
            distinct,
            100.0 * (total - distinct) as f64 / total.max(1) as f64
        );
    }
    let stats = cache.stats();
    println!(
        "(controller cache: {} unique shapes synthesized, {} served from cache)",
        stats.misses, stats.hits
    );
    Ok(())
}
