//! Ablation: Minimalist's speed mode (single-output minimization) vs area
//! mode (shared identical products) — product and literal counts per
//! benchmark controller set.

use bmbe_bm::synth::{synthesize, MinimizeMode};
use bmbe_core::{balsa_to_ch, compile_to_bm, ClusterOptions};
use bmbe_designs::all_designs;

fn main() {
    println!("Ablation: minimization mode (products / distinct products)");
    for design in all_designs().expect("designs build") {
        let mut ctrl = balsa_to_ch(&design.compiled.netlist).expect("translates");
        ctrl.t2_clustering(&ClusterOptions::default());
        let mut total = 0usize;
        let mut distinct = 0usize;
        for c in &ctrl.components {
            let spec = compile_to_bm(&c.name, &c.program).expect("compiles");
            let syn = synthesize(&spec, MinimizeMode::Speed).expect("synthesizes");
            total += syn.num_products();
            distinct += syn.num_distinct_products();
        }
        println!(
            "{:<22} speed-mode products {:>4}, shareable (area mode) {:>4}  ({:.1}% duplication)",
            design.name,
            total,
            distinct,
            100.0 * (total - distinct) as f64 / total.max(1) as f64
        );
    }
}
