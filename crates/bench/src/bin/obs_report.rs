//! Observability report: runs the Stack benchmark design through the full
//! back-end (flow synthesis, simulation, one trace-verification obligation)
//! with tracing enabled, writes the Chrome trace (`BMBE_TRACE_OUT`,
//! default `trace.json`) plus a JSONL event log next to it, and prints a
//! machine-readable summary — trace shape plus the metrics registry — to
//! stdout. Human-readable progress goes to stderr (`BMBE_VERBOSE=1`).
//!
//! `--check` additionally validates everything a trace consumer relies on
//! and exits non-zero on the first violation:
//!
//! - the emitted Chrome trace and every JSONL line parse as JSON
//!   (`bmbe_obs::export::validate_json`, dependency-free);
//! - every span closes exactly once, LIFO per lane, nothing dropped
//!   (`bmbe_obs::export::validate`);
//! - the span lanes cover all five per-shape flow phases and the simulator
//!   run loop.
//!
//! This is the smoke gate the tier-1 CI script runs.

use bmbe_bench::report::{escape, run_main, write_trace_files};
use bmbe_core::components::{decision_wait, sequencer};
use bmbe_core::opt::verify_acr_compared;
use bmbe_designs::all_designs;
use bmbe_flow::{run_control_flow, simulate, to_flow_scenario, FlowOptions};
use bmbe_gates::Library;
use bmbe_obs::export::{validate, validate_json};
use bmbe_sim::prims::Delays;
use std::fmt::Write as _;
use std::process::ExitCode;

/// The span names a complete trace must contain: the five per-shape flow
/// phases plus the simulator run loop.
const REQUIRED_SPANS: &[&str] = &[
    "shape.compile",
    "shape.statemin",
    "shape.synth",
    "shape.verify",
    "shape.map",
    "sim.run",
];

fn main() -> ExitCode {
    run_main("obs_report", run)
}

fn run() -> Result<bool, String> {
    let check = std::env::args().any(|a| a == "--check");
    let fail = |msg: String| format!("--check: {msg}");
    bmbe_obs::init_from_env();
    bmbe_obs::set_enabled(true);

    let library = Library::cmos035();
    let designs = all_designs().map_err(|e| format!("shipped designs: {e}"))?;
    let design = designs
        .iter()
        .find(|d| d.name == "Stack")
        .ok_or("Stack benchmark design missing")?;

    bmbe_obs::vlog!(1, "tracing flow synthesis of {} ...", design.name);
    let flow = run_control_flow(
        &design.compiled,
        &FlowOptions::optimized().with_env_fault(),
        &library,
    )
    .map_err(|e| format!("{} flow: {e}", design.name))?;
    bmbe_obs::vlog!(1, "tracing simulation ...");
    let scenario = to_flow_scenario(&design.scenario);
    let outcome = simulate(&design.compiled, &flow, &scenario, &Delays::default())
        .map_err(|e| format!("{} sim: {e}", design.name))?;
    bmbe_obs::vlog!(1, "tracing trace verification ...");
    let dw = decision_wait(
        "a1",
        &["i1".to_string(), "i2".to_string()],
        &["o1".to_string(), "o2".to_string()],
    );
    let seq = sequencer("o2", &["c1".to_string(), "c2".to_string()]);
    verify_acr_compared(&dw, &seq, "o2").map_err(|e| format!("verification obligation: {e}"))?;

    bmbe_obs::set_enabled(false);
    let trace = bmbe_obs::flush();

    let (out_path, jsonl_path) = write_trace_files(&trace)?;

    let mut covered: Vec<&str> = REQUIRED_SPANS
        .iter()
        .copied()
        .filter(|name| trace.has_callsite(name))
        .collect();
    covered.sort_unstable();

    if check {
        if let Err(e) = validate(&trace) {
            return Err(fail(format!("trace validation: {e}")));
        }
        // Validate the files as written, not the in-memory strings: the
        // check covers the full export-to-disk path consumers read.
        let chrome = std::fs::read_to_string(&out_path)
            .map_err(|e| fail(format!("read back {out_path}: {e}")))?;
        if let Err((at, e)) = validate_json(&chrome) {
            return Err(fail(format!("{out_path} is not valid JSON at byte {at}: {e}")));
        }
        let jsonl = std::fs::read_to_string(&jsonl_path)
            .map_err(|e| fail(format!("read back {jsonl_path}: {e}")))?;
        for (n, line) in jsonl.lines().enumerate() {
            if let Err((at, e)) = validate_json(line) {
                return Err(fail(format!("{jsonl_path} line {}: byte {at}: {e}", n + 1)));
            }
        }
        for name in REQUIRED_SPANS {
            if !trace.has_callsite(name) {
                return Err(fail(format!("required span {name:?} missing from the trace")));
            }
        }
        if !outcome.completed {
            return Err(fail("simulation scenario did not complete".to_string()));
        }
        bmbe_obs::vlog!(1, "all checks passed");
    }

    let mut summary = String::from("{\n");
    let _ = writeln!(summary, "  \"report\": \"obs\",");
    let _ = writeln!(summary, "  \"design\": \"{}\",", escape(design.name));
    let _ = writeln!(summary, "  \"trace_out\": \"{}\",", escape(&out_path));
    let _ = writeln!(summary, "  \"jsonl_out\": \"{}\",", escape(&jsonl_path));
    let _ = writeln!(summary, "  \"trace_records\": {},", trace.events.len());
    let _ = writeln!(summary, "  \"lanes\": {},", trace.lanes.len());
    let _ = writeln!(summary, "  \"dropped\": {},", trace.dropped);
    let _ = writeln!(summary, "  \"sim_events\": {},", outcome.events);
    let _ = writeln!(summary, "  \"checked\": {check},");
    let _ = write!(summary, "  \"spans_covered\": [");
    for (i, name) in covered.iter().enumerate() {
        let _ = write!(
            summary,
            "{}\"{name}\"",
            if i > 0 { ", " } else { "" }
        );
    }
    let _ = writeln!(summary, "],");
    let _ = writeln!(summary, "  \"metrics\": {}", bmbe_obs::metrics::snapshot_json());
    summary.push_str("}\n");
    // Stdout is the machine-readable channel: the summary JSON and nothing
    // else.
    print!("{summary}");
    Ok(true)
}
