//! Ablation: hazard-aware (Nowick–Dill) vs hazard-oblivious
//! (Quine–McCluskey) two-level minimization of the same burst-mode
//! controller functions. The QM covers are smaller but ternary simulation
//! finds transitions that can glitch — the reason Minimalist exists.

use bmbe_bm::synth::{synthesize, MinimizeMode};
use bmbe_core::compile_to_bm;
use bmbe_core::components::{call, decision_wait, sequencer};
use bmbe_logic::cover::Tv;
use bmbe_logic::qm;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: ablation_hazard: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    println!("Ablation: hazard-free vs hazard-oblivious minimization");
    println!(
        "{:<18} {:>12} {:>10} {:>14} {:>16}",
        "controller", "hf products", "qm products", "hf glitches", "qm glitches"
    );
    let programs = vec![
        ("sequencer_2", sequencer("p", &["a1".into(), "a2".into()])),
        (
            "sequencer_4",
            sequencer("p", &(0..4).map(|i| format!("a{i}")).collect::<Vec<_>>()),
        ),
        ("call_2", call(&["x".into(), "y".into()], "b")),
        (
            "decision_wait_2",
            decision_wait(
                "a",
                &["i1".into(), "i2".into()],
                &["o1".into(), "o2".into()],
            ),
        ),
    ];
    for (name, program) in programs {
        let spec = compile_to_bm(name, &program).map_err(|e| format!("{name}: compile: {e}"))?;
        let ctrl =
            synthesize(&spec, MinimizeMode::Speed).map_err(|e| format!("{name}: synth: {e}"))?;
        let mut hf_products = 0usize;
        let mut qm_products = 0usize;
        let mut hf_glitches = 0usize;
        let mut qm_glitches = 0usize;
        let n = ctrl.num_vars();
        for fspec in &ctrl.function_specs {
            let hf = fspec
                .minimize()
                .map_err(|e| format!("{name}: hazard-free minimization: {e:?}"))?;
            hf_products += hf.cover.len();
            let on = fspec.on_set();
            // DC = everything outside the specified transitions.
            let mut spec_space = on.clone();
            spec_space.extend(fspec.off_set().cubes().iter().copied());
            // QM with DC = complement of specified: approximate by passing
            // the OFF-set as the only forbidden region.
            let dc = complement_cover(n, &spec_space);
            let qm_cover = qm::minimize(n, &on, &dc).ok_or(format!("{name}: qm infeasible"))?;
            qm_products += qm_cover.len();
            // Ternary-check every specified transition on both covers.
            for t in fspec.transitions() {
                let changing = t.start ^ t.end;
                let values: Vec<Tv> = (0..n)
                    .map(|i| {
                        if changing >> i & 1 == 1 {
                            Tv::X
                        } else {
                            Tv::from_bool(t.start >> i & 1 == 1)
                        }
                    })
                    .collect();
                if t.from == t.to {
                    if hf.cover.eval_ternary(&values) != Tv::from_bool(t.from) {
                        hf_glitches += 1;
                    }
                    if qm_cover.eval_ternary(&values) != Tv::from_bool(t.from) {
                        qm_glitches += 1;
                    }
                }
            }
        }
        println!(
            "{:<18} {:>12} {:>10} {:>14} {:>16}",
            name, hf_products, qm_products, hf_glitches, qm_glitches
        );
    }
    // The textbook consensus case, where the two minimizations differ.
    {
        use bmbe_logic::FunctionSpec;
        let mut fspec = FunctionSpec::new(3);
        // f = x0 x1' + x1 x2 with a 1->1 transition across x1.
        fspec.add_static(0b001, 0b101, true);
        fspec.add_static(0b110, 0b111, true);
        fspec.add_static(0b101, 0b111, true);
        for off in [0b000u64, 0b010, 0b011, 0b100] {
            fspec.add_static(off, off, false);
        }
        let hf = fspec
            .minimize()
            .map_err(|e| format!("consensus_f: hazard-free minimization: {e:?}"))?;
        let on = fspec.on_set();
        let mut spec_space = on.clone();
        spec_space.extend(fspec.off_set().cubes().iter().copied());
        let dc = complement_cover(3, &spec_space);
        let qm_cover =
            qm::minimize(3, &on, &dc).ok_or("consensus_f: qm infeasible".to_string())?;
        let probe = [Tv::One, Tv::X, Tv::One];
        let hf_glitch = (hf.cover.eval_ternary(&probe) == Tv::X) as usize;
        let qm_glitch = (qm_cover.eval_ternary(&probe) == Tv::X) as usize;
        println!(
            "{:<18} {:>12} {:>10} {:>14} {:>16}",
            "consensus_f",
            hf.cover.len(),
            qm_cover.len(),
            hf_glitch,
            qm_glitch
        );
    }
    println!();
    println!("(hazard-free covers carry extra products but never glitch; the");
    println!(" QM covers are minimal yet ternary simulation exposes static");
    println!(" hazards on multiple-input-change transitions)");
    Ok(())
}

/// A crude complement: cubes covering points outside `cover`, built by
/// recursive splitting (fine for the small controller spaces used here).
fn complement_cover(n: usize, cover: &bmbe_logic::Cover) -> bmbe_logic::Cover {
    use bmbe_logic::{Cover, Cube};
    fn go(cube: Cube, cover: &Cover, out: &mut Vec<Cube>) {
        if !cover.intersects(&cube) {
            out.push(cube);
            return;
        }
        if cover.covers_cube(&cube) {
            return;
        }
        // Split on the first free variable.
        for i in 0..cube.num_vars() {
            if !cube.is_fixed(i) {
                go(cube.with_fixed(i, false), cover, out);
                go(cube.with_fixed(i, true), cover, out);
                return;
            }
        }
    }
    let mut out = Vec::new();
    go(Cube::universe(n), cover, &mut out);
    Cover::from_cubes(out)
}
