//! Regenerates Fig. 4: Activation Channel Removal applied to a
//! decision-wait activating a sequencer over channel o2.

use bmbe_bench::paper::FIG4_MERGED_STATES;
use bmbe_core::compile::compile_to_bm;
use bmbe_core::components::{decision_wait, sequencer};
use bmbe_core::opt::acr::activation_channel_removal;

fn main() {
    let dw = decision_wait(
        "a1",
        &["i1".into(), "i2".into()],
        &["o1".into(), "o2".into()],
    );
    let seq = sequencer("o2", &["c1".into(), "c2".into()]);
    println!(
        "--- decision-wait ({} states):",
        compile_to_bm("dw", &dw).expect("compiles").num_states()
    );
    print!("{}", compile_to_bm("dw", &dw).expect("compiles"));
    println!(
        "--- sequencer ({} states):",
        compile_to_bm("seq", &seq).expect("compiles").num_states()
    );
    print!("{}", compile_to_bm("seq", &seq).expect("compiles"));
    let merged = activation_channel_removal(&dw, &seq, "o2", None).expect("merge succeeds");
    let spec = compile_to_bm("merged", &merged).expect("merged compiles");
    println!(
        "--- merged: {} states (paper: {FIG4_MERGED_STATES}) {}",
        spec.num_states(),
        if spec.num_states() == FIG4_MERGED_STATES {
            "MATCH"
        } else {
            "MISMATCH"
        }
    );
    print!("{spec}");
}
