//! Batch driver report: runs a fleet of design jobs — replicas of the four
//! benchmark designs, each with a compiled-backend simulation stage — over
//! one shared controller cache, sharding distinct shape digests across the
//! worker pool (singleflight; each shape synthesized exactly once per
//! fleet). Streams one JSON object per job to stdout in submission order,
//! then a fleet summary line; stdout is pure JSON (one object per line),
//! human-readable progress goes to stderr under `BMBE_VERBOSE=1`.
//!
//! Honours `BMBE_CACHE_DIR` (the persistent disk cache — a second run of
//! the same fleet resolves every shape from disk), `BMBE_THREADS`,
//! `BMBE_FAULT` (`cache_io` plans degrade disk traffic to misses; synthesis
//! plans fail the claiming job), and `BMBE_TRACE=1` (writes the Chrome +
//! self-describing JSONL trace pair to `BMBE_TRACE_OUT` on exit, so a
//! fleet of traced processes leaves streams `trace_report` can merge).
//!
//! ```text
//! batch_report [--replicas N] [--sim-batch K] [--threads T] [--seed S]
//! ```
//!
//! Exits non-zero when any job fails (after reporting every job).

use bmbe_bench::report::{escape, export_trace_if_enabled, flag, run_main};
use bmbe_designs::all_designs;
use bmbe_flow::{run_batch, BatchJob, ControllerCache, FlowOptions};
use bmbe_gates::Library;
use std::fmt::Write as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    run_main("batch_report", run)
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let replicas = flag(&args, "--replicas", 3)?;
    let sim_batch = flag(&args, "--sim-batch", 8)?;
    let threads = flag(&args, "--threads", bmbe_par::default_threads())?;
    let seed = flag(&args, "--seed", 42)? as u64;
    bmbe_obs::init_from_env();

    let library = Library::cmos035();
    let cache = ControllerCache::from_env();
    let designs = all_designs().map_err(|e| format!("shipped designs: {e}"))?;
    // Replicas interleave across designs (a#0 b#0 ... a#1 b#1 ...), the
    // worst case for naive per-job caching and the case singleflight
    // dedup must win: only the first job to reach a digest synthesizes.
    let jobs: Vec<BatchJob> = (0..replicas)
        .flat_map(|r| {
            designs.iter().map(move |d| BatchJob {
                label: format!("{}#{r}", d.name),
                design: d.compiled.clone(),
                options: FlowOptions::optimized().with_env_fault(),
                scenario: Some(d.scenario.clone()),
                sim_batch,
                // Vary data per (design, replica) so no two jobs in the
                // fleet draw identical variant sequences — a shared
                // `seed + r` stream would hand every design of one
                // replica the same sequence.
                seed: bmbe_designs::derive_seed(seed, d.name, "", r as u64),
            })
        })
        .collect();
    bmbe_obs::vlog!(1, "batch: {} jobs on {} threads ...", jobs.len(), threads);

    let summary = run_batch(&jobs, &library, &cache, threads);
    for outcome in &summary.jobs {
        let mut line = String::new();
        match outcome {
            Ok(r) => {
                write!(
                    line,
                    "{{\"job\": \"{}\", \"design\": \"{}\", \"ok\": true, \
                     \"controllers\": {}, \"products\": {}, \"control_area\": {:.1}, \
                     \"distinct_shapes\": {}, \"cache_hits\": {}, \"synthesized\": {}, \
                     \"shared\": {}, \"sim_lanes\": {}, \"sim_completed\": {}, \
                     \"wall_s\": {:.6}}}",
                    escape(&r.label),
                    escape(&r.design),
                    r.controllers,
                    r.products,
                    r.control_area,
                    r.distinct_shapes,
                    r.cache_hits,
                    r.synthesized,
                    r.shared,
                    r.sim_lanes,
                    r.sim_completed,
                    r.wall_s
                )
                .unwrap();
            }
            Err(f) => {
                write!(
                    line,
                    "{{\"job\": \"{}\", \"design\": \"{}\", \"ok\": false, \
                     \"phase\": \"{}\", \"component\": \"{}\", \"cache_key\": \"{}\", \
                     \"error\": \"{}\"}}",
                    escape(&f.label),
                    escape(&f.design),
                    escape(f.phase),
                    escape(&f.component),
                    escape(&f.cache_key),
                    escape(&f.error)
                )
                .unwrap();
                eprintln!("batch_report: {f}");
            }
        }
        println!("{line}");
    }
    let stats = cache.stats();
    println!(
        "{{\"summary\": true, \"jobs\": {}, \"failed\": {}, \"distinct_shapes\": {}, \
         \"synthesized\": {}, \"shared_waits\": {}, \"cache_hits\": {}, \
         \"job_workers\": {}, \"inner_threads\": {}, \"disk_cache\": {}, \
         \"cache_stats\": {{\"hits\": {}, \"misses\": {}}}, \"wall_s\": {:.6}}}",
        summary.jobs.len(),
        summary.failed(),
        summary.distinct_shapes,
        summary.synthesized,
        summary.shared_waits,
        summary.cache_hits,
        summary.job_workers,
        summary.inner_threads,
        cache.disk().is_some(),
        stats.hits,
        stats.misses,
        summary.wall_s
    );
    // A traced fleet process leaves its self-describing JSONL stream
    // behind: concatenating the streams of a cold and a warm run is what
    // `trace_report` analyzes as one merged fleet trace.
    export_trace_if_enabled()?;
    Ok(summary.failed() == 0)
}
