//! Regenerates Table 2: the four-phase expansion of each interleaving
//! operator for every legal activity combination, shown on two fresh
//! channels `a` and `b`.

use bmbe_core::ast::{legal, ChActivity, ChExpr, InterleaveOp};
use bmbe_core::expand::expand;

fn chan(name: &str, act: ChActivity) -> ChExpr {
    ChExpr::PToP {
        activity: act,
        name: name.into(),
    }
}

fn main() {
    use ChActivity::{Active, Passive};
    println!("Table 2: The Four-Phase Expansion of CH Operators");
    for op in InterleaveOp::ALL {
        for (a, b, label) in [
            (Active, Active, "active/active"),
            (Active, Passive, "active/passive"),
            (Passive, Active, "passive/active"),
            (Passive, Passive, "passive/passive"),
        ] {
            if !legal(op, a, b) {
                continue;
            }
            let e = ChExpr::op(op, chan("a", a), chan("b", b));
            match expand(&e) {
                Ok(x) => println!("{:<11} {:<16} {x}", op.keyword(), label),
                Err(err) => println!("{:<11} {:<16} <{err}>", op.keyword(), label),
            }
        }
    }
}
