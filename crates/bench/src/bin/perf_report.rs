//! Performance report for the parallel, content-addressed back-end: times
//! the seed's serial uncached pipeline against the cached + parallel
//! pipeline on every benchmark design and writes `BENCH_flow.json`,
//! including a per-phase profile (compile / statemin / synth / primes /
//! covering / verify / map) and, when a previous `BENCH_flow.json` exists,
//! before/after numbers against it.
//!
//! Run with `--release`; the debug build is an order of magnitude slower.
//!
//! Stdout carries the pure JSON report (the same text written to
//! `BENCH_flow.json`); the human-readable tables go to **stderr** via
//! `bmbe_obs::vlog!` at verbosity ≥ 1 (`BMBE_VERBOSE=1`).

use bmbe_bench::report::{emit_report, run_main};
use bmbe_designs::all_designs;
use bmbe_flow::{
    run_control_flow, run_control_flow_with, ControllerCache, FlowOptions, MinimizeBackend,
    PhaseProfile,
};
use bmbe_gates::Library;
use std::fmt::Write as _;
use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

const SAMPLES: usize = 9;

/// Median of a sample vector.
fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Medians of `routines.len()` interleaved routines over `SAMPLES` rounds
/// (after one untimed warm-up round). Interleaving round-robins the
/// routines so host-load drift between sampling windows lands on every
/// routine equally instead of biasing whichever ran last.
fn interleaved_median_secs(routines: &mut [&mut dyn FnMut()]) -> Vec<f64> {
    for routine in routines.iter_mut() {
        routine();
    }
    let mut samples = vec![Vec::with_capacity(SAMPLES); routines.len()];
    for _ in 0..SAMPLES {
        for (routine, out) in routines.iter_mut().zip(&mut samples) {
            let start = Instant::now();
            routine();
            out.push(start.elapsed().as_secs_f64());
        }
    }
    samples.into_iter().map(median).collect()
}

struct Row {
    design: String,
    components: usize,
    serial_s: f64,
    cached_s: f64,
    warm_s: f64,
    hits: usize,
    misses: usize,
    phases: PhaseProfile,
    /// Median cold prime-generation seconds under the default (`Auto`)
    /// minimizer backend and under the exact prime-enumerating backend:
    /// the per-backend before/after the perf-smoke gate checks.
    prime_gen_auto_s: f64,
    prime_gen_exact_s: f64,
    prev_serial_s: Option<f64>,
    prev_cached_s: Option<f64>,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.serial_s / self.cached_s
    }
}

/// Pulls `"field": <number>` out of `text` after position `from`.
fn field_after(text: &str, from: usize, field: &str) -> Option<f64> {
    let needle = format!("\"{field}\":");
    let at = text[from..].find(&needle)? + from + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Reads the previous report's per-design serial/cached seconds so the new
/// report can carry before/after numbers. Tolerant by construction: any
/// missing file, design, or field simply yields `None`.
fn previous_numbers(design: &str) -> (Option<f64>, Option<f64>) {
    let Ok(text) = std::fs::read_to_string("BENCH_flow.json") else {
        return (None, None);
    };
    let Some(at) = text.find(&format!("\"design\": \"{design}\"")) else {
        return (None, None);
    };
    (
        field_after(&text, at, "serial_uncached_s"),
        field_after(&text, at, "cached_parallel_s"),
    )
}

fn main() -> ExitCode {
    run_main("perf_report", run)
}

fn run() -> Result<bool, String> {
    bmbe_obs::init_from_env();
    let library = Library::cmos035();
    let designs = all_designs().map_err(|e| format!("shipped designs: {e}"))?;
    let mut rows = Vec::new();
    let mut threads_used = 1;
    for design in &designs {
        let (prev_serial_s, prev_cached_s) = previous_numbers(design.name);
        // Preflight each configuration once with any BMBE_FAULT plan armed:
        // an injected (or genuine) failure surfaces here as a structured
        // error instead of a panic mid-timing. The timed runs below then
        // measure the plain, fault-free options.
        for options in [
            FlowOptions::optimized().serial_uncached().with_env_fault(),
            FlowOptions::optimized().with_env_fault(),
        ] {
            run_control_flow(&design.compiled, &options, &library)
                .map_err(|e| format!("{}: {e}", design.name))?;
        }
        let warm = ControllerCache::new();
        // Fresh cache on every "cached" run: cold-cache dedup + parallel
        // fan-out, the honest comparison against the seed.
        let timings = interleaved_median_secs(&mut [
            &mut || {
                black_box(
                    run_control_flow(
                        &design.compiled,
                        &FlowOptions::optimized().serial_uncached(),
                        &library,
                    )
                    .expect("serial flow"),
                );
            },
            &mut || {
                black_box(
                    run_control_flow(&design.compiled, &FlowOptions::optimized(), &library)
                        .expect("cached flow"),
                );
            },
            &mut || {
                black_box(
                    run_control_flow_with(
                        &design.compiled,
                        &FlowOptions::optimized(),
                        &library,
                        &warm,
                    )
                    .expect("warm flow"),
                );
            },
        ]);
        let (serial_s, cached_s, warm_s) = (timings[0], timings[1], timings[2]);
        let result = run_control_flow(&design.compiled, &FlowOptions::optimized(), &library)
            .map_err(|e| format!("{}: {e}", design.name))?;
        threads_used = result.threads_used;
        // Per-backend prime generation, cold cache, median of 3: the Auto
        // default (which routes wide functions to the cube-cofactor
        // engine) against the exact prime-enumerating backend.
        let prime_gen_median = |backend: MinimizeBackend| -> Result<f64, String> {
            let samples = (0..3)
                .map(|_| {
                    let mut options = FlowOptions::optimized();
                    options.minimize_backend = backend;
                    run_control_flow(&design.compiled, &options, &library)
                        .map(|r| r.phases.prime_gen.as_secs_f64())
                        .map_err(|e| format!("{}/{backend:?}: {e}", design.name))
                })
                .collect::<Result<Vec<f64>, String>>()?;
            Ok(median(samples))
        };
        let prime_gen_auto_s = prime_gen_median(MinimizeBackend::Auto)?;
        let prime_gen_exact_s = prime_gen_median(MinimizeBackend::ExactPrimes)?;
        rows.push(Row {
            design: design.name.to_string(),
            components: result.controllers.len(),
            serial_s,
            cached_s,
            warm_s,
            hits: result.cache_hits,
            misses: result.cache_misses,
            phases: result.phases,
            prime_gen_auto_s,
            prime_gen_exact_s,
            prev_serial_s,
            prev_cached_s,
        });
    }

    bmbe_obs::vlog!(
        1,
        "flow perf ({threads_used} threads, median of {SAMPLES} runs; cold = fresh cache per run)"
    );
    bmbe_obs::vlog!(
        1,
        "{:<22} {:>5} {:>12} {:>12} {:>9} {:>12} {:>6} {:>6}",
        "design",
        "ctrl",
        "serial s",
        "cold s",
        "speedup",
        "warm s",
        "hits",
        "miss"
    );
    for r in &rows {
        bmbe_obs::vlog!(
            1,
            "{:<22} {:>5} {:>12.4} {:>12.4} {:>8.2}x {:>12.4} {:>6} {:>6}",
            r.design,
            r.components,
            r.serial_s,
            r.cached_s,
            r.speedup(),
            r.warm_s,
            r.hits,
            r.misses
        );
    }
    bmbe_obs::vlog!(1, "\nper-phase profile of one cold cached run (seconds):");
    bmbe_obs::vlog!(
        1,
        "{:<22} {:>8} {:>9} {:>8} {:>8} {:>9} {:>8} {:>7} {:>7}",
        "design",
        "compile",
        "statemin",
        "synth",
        "primes",
        "covering",
        "verify",
        "map",
        "shapes"
    );
    for r in &rows {
        let p = &r.phases;
        bmbe_obs::vlog!(
            1,
            "{:<22} {:>8.4} {:>9.4} {:>8.4} {:>8.4} {:>9.4} {:>8.4} {:>7.4} {:>7}",
            r.design,
            p.compile.as_secs_f64(),
            p.statemin.as_secs_f64(),
            p.synth.as_secs_f64(),
            p.prime_gen.as_secs_f64(),
            p.covering.as_secs_f64(),
            p.verify.as_secs_f64(),
            p.map.as_secs_f64(),
            p.shapes
        );
    }
    bmbe_obs::vlog!(
        1,
        "\nprime generation per backend (cold, median of 3 runs, seconds):"
    );
    bmbe_obs::vlog!(
        1,
        "{:<22} {:>12} {:>12} {:>9}",
        "design",
        "auto",
        "exact",
        "speedup"
    );
    for r in &rows {
        bmbe_obs::vlog!(
            1,
            "{:<22} {:>12.4} {:>12.4} {:>8.2}x",
            r.design,
            r.prime_gen_auto_s,
            r.prime_gen_exact_s,
            r.prime_gen_exact_s / r.prime_gen_auto_s.max(f64::EPSILON)
        );
    }

    let mut json = String::from("{\n  \"bench\": \"flow_e2e\",\n");
    let _ = writeln!(json, "  \"threads\": {threads_used},");
    let _ = writeln!(json, "  \"samples\": {SAMPLES},");
    let _ = writeln!(
        json,
        "  \"note\": \"cold-cache shape fan-out is gated by a small-work cutoff \
         (pipeline::PAR_COST_CUTOFF), so designs whose pending shapes are too small to \
         amortize a worker pool run inline; on a host without spare cores every design runs \
         inline and the serial-vs-cached ratio sits at 1.0 within measurement noise, with \
         dedup (cache hits) the only structural saving\","
    );
    json.push_str("  \"designs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"design\": \"{}\", \"controllers\": {}, \"serial_uncached_s\": {:.6}, \
             \"cached_parallel_s\": {:.6}, \"speedup\": {:.3}, \"warm_cache_s\": {:.6}, \
             \"cache_hits\": {}, \"cache_misses\": {}",
            r.design,
            r.components,
            r.serial_s,
            r.cached_s,
            r.speedup(),
            r.warm_s,
            r.hits,
            r.misses
        );
        if let (Some(ps), Some(pc)) = (r.prev_serial_s, r.prev_cached_s) {
            let _ = write!(
                json,
                ", \"before\": {{\"serial_uncached_s\": {ps:.6}, \"cached_parallel_s\": {pc:.6}, \
                 \"cached_speedup_vs_before\": {:.3}}}",
                pc / r.cached_s
            );
        }
        let _ = write!(
            json,
            ", \"backends\": {{\"auto_prime_gen_s\": {:.6}, \"exact_prime_gen_s\": {:.6}, \
             \"auto_speedup_vs_exact\": {:.3}}}",
            r.prime_gen_auto_s,
            r.prime_gen_exact_s,
            r.prime_gen_exact_s / r.prime_gen_auto_s.max(f64::EPSILON)
        );
        let p = &r.phases;
        let _ = write!(
            json,
            ", \"phases\": {{\"compile_s\": {:.6}, \"statemin_s\": {:.6}, \"synth_s\": {:.6}, \
             \"prime_gen_s\": {:.6}, \"covering_s\": {:.6}, \"verify_s\": {:.6}, \
             \"map_s\": {:.6}, \"shapes\": {}}}}}",
            p.compile.as_secs_f64(),
            p.statemin.as_secs_f64(),
            p.synth.as_secs_f64(),
            p.prime_gen.as_secs_f64(),
            p.covering.as_secs_f64(),
            p.verify.as_secs_f64(),
            p.map.as_secs_f64(),
            p.shapes
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    emit_report("BENCH_flow.json", &json)?;
    Ok(true)
}
