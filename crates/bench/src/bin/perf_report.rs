//! Performance report for the parallel, content-addressed back-end: times
//! the seed's serial uncached pipeline against the cached + parallel
//! pipeline on every benchmark design and writes `BENCH_flow.json`.
//!
//! Run with `--release`; the debug build is an order of magnitude slower.

use bmbe_flow::{run_control_flow, run_control_flow_with, ControllerCache, FlowOptions};
use bmbe_designs::all_designs;
use bmbe_gates::Library;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

const SAMPLES: usize = 5;

/// Median wall-clock seconds over `SAMPLES` runs (after one warm-up).
fn median_secs<F: FnMut()>(mut routine: F) -> f64 {
    routine(); // warm-up, untimed
    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            routine();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct Row {
    design: String,
    components: usize,
    serial_s: f64,
    cached_s: f64,
    warm_s: f64,
    hits: usize,
    misses: usize,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.serial_s / self.cached_s
    }
}

fn main() {
    let library = Library::cmos035();
    let threads = bmbe_par::default_threads();
    let designs = all_designs().expect("shipped designs build");
    let mut rows = Vec::new();
    for design in &designs {
        let serial_s = median_secs(|| {
            black_box(
                run_control_flow(
                    &design.compiled,
                    &FlowOptions::optimized().serial_uncached(),
                    &library,
                )
                .expect("serial flow"),
            );
        });
        // Fresh cache every run: cold-cache dedup + parallel fan-out, the
        // honest comparison against the seed.
        let cached_s = median_secs(|| {
            black_box(
                run_control_flow(&design.compiled, &FlowOptions::optimized(), &library)
                    .expect("cached flow"),
            );
        });
        let warm = ControllerCache::new();
        let warm_s = median_secs(|| {
            black_box(
                run_control_flow_with(&design.compiled, &FlowOptions::optimized(), &library, &warm)
                    .expect("warm flow"),
            );
        });
        let result = run_control_flow(&design.compiled, &FlowOptions::optimized(), &library)
            .expect("cached flow");
        rows.push(Row {
            design: design.name.to_string(),
            components: result.controllers.len(),
            serial_s,
            cached_s,
            warm_s,
            hits: result.cache_hits,
            misses: result.cache_misses,
        });
    }

    println!(
        "flow perf ({threads} threads, median of {SAMPLES} runs; cold = fresh cache per run)"
    );
    println!(
        "{:<22} {:>5} {:>12} {:>12} {:>9} {:>12} {:>6} {:>6}",
        "design", "ctrl", "serial s", "cold s", "speedup", "warm s", "hits", "miss"
    );
    for r in &rows {
        println!(
            "{:<22} {:>5} {:>12.4} {:>12.4} {:>8.2}x {:>12.4} {:>6} {:>6}",
            r.design,
            r.components,
            r.serial_s,
            r.cached_s,
            r.speedup(),
            r.warm_s,
            r.hits,
            r.misses
        );
    }

    let mut json = String::from("{\n  \"bench\": \"flow_e2e\",\n");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"samples\": {SAMPLES},");
    json.push_str("  \"designs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"design\": \"{}\", \"controllers\": {}, \"serial_uncached_s\": {:.6}, \
             \"cached_parallel_s\": {:.6}, \"speedup\": {:.3}, \"warm_cache_s\": {:.6}, \
             \"cache_hits\": {}, \"cache_misses\": {}}}",
            r.design,
            r.components,
            r.serial_s,
            r.cached_s,
            r.speedup(),
            r.warm_s,
            r.hits,
            r.misses
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_flow.json", &json).expect("write BENCH_flow.json");
    println!("\nwrote BENCH_flow.json");
}
