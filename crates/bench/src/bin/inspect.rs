//! Developer aid: prints the controller inventory of each benchmark design
//! under the optimized flow.

use bmbe_designs::all_designs;
use bmbe_flow::{run_control_flow, FlowOptions};
use bmbe_gates::Library;

fn main() {
    let lib = Library::cmos035();
    for design in all_designs().expect("designs build") {
        let opt = run_control_flow(&design.compiled, &FlowOptions::optimized(), &lib)
            .unwrap_or_else(|e| panic!("{}: {e}", design.name));
        println!(
            "=== {} ({} components -> {} controllers)",
            design.name,
            opt.components_before,
            opt.controllers.len()
        );
        if let Some(r) = &opt.cluster_report {
            println!("  {r}");
        }
        for c in &opt.controllers {
            println!(
                "  {:<60} {:>3} states {:>3} vars {:>4} products {:>8.0} um2 {:>6.3} ns",
                c.name,
                c.bm_states,
                c.controller.num_vars(),
                c.controller.num_products(),
                c.mapped.area,
                c.mapped.critical_delay()
            );
        }
    }
}
