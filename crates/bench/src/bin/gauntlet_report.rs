//! Differential gauntlet report: generates a fixed-seed corpus slice and
//! runs every design through all five oracle pairs (heap vs wheel,
//! compiled vs wheel, on-the-fly vs materialized verification, serial vs
//! parallel, faulted vs clean — see `bmbe_flow::gauntlet`), routed through
//! the shared controller cache (`BMBE_CACHE_DIR` honoured). Emits one JSON
//! report (stdout + `BENCH_gauntlet.json`) with per-pair comparison counts
//! and every finding's replay one-liner.
//!
//! ```text
//! gauntlet_report [--seed S] [--designs N] [--threads T] [--inject I]
//! ```
//!
//! Exits non-zero when any oracle pair diverged (after reporting all
//! findings) or when an oracle pair was never exercised. `--inject I`
//! deliberately perturbs design `I`'s compiled-backend outcome — the smoke
//! test that proves the detection and reporting path end to end.

use bmbe_bench::report::{emit_report, escape, export_trace_if_enabled, flag, run_main};
use bmbe_flow::{run_gauntlet, ControllerCache, GauntletConfig};
use bmbe_gates::Library;
use std::fmt::Write as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    run_main("gauntlet_report", run)
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = GauntletConfig {
        seed: flag(&args, "--seed", 1)? as u64,
        designs: flag(&args, "--designs", 200)?,
        threads: flag(&args, "--threads", 0)?,
        ..GauntletConfig::default()
    };
    if args.iter().any(|a| a == "--inject") {
        cfg.inject = Some(flag(&args, "--inject", 0)?);
    }
    bmbe_obs::init_from_env();

    let library = Library::cmos035();
    let cache = ControllerCache::from_env();
    bmbe_obs::vlog!(1, "gauntlet: seed {} designs {} ...", cfg.seed, cfg.designs);
    let report = run_gauntlet(&cfg, &library, &cache).map_err(|e| format!("corpus: {e}"))?;

    let mut findings = String::new();
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            findings.push_str(", ");
        }
        write!(
            findings,
            "{{\"oracle\": \"{}\", \"design\": \"{}\", \"family\": \"{}\", \
             \"params\": \"{}\", \"seed\": {}, \
             \"replay\": \"bmbe gauntlet --seed {} --designs {} --only {}\", \
             \"detail\": \"{}\"}}",
            escape(f.oracle),
            escape(&f.design),
            escape(&f.family),
            escape(&f.params),
            f.seed,
            report.seed,
            report.designs,
            escape(&f.design),
            escape(&f.detail)
        )
        .unwrap();
    }
    let json = format!(
        "{{\n  \"bench\": \"gauntlet\",\n  \"seed\": {},\n  \"designs\": {},\n  \
         \"checks\": {{\"heap_vs_wheel\": {}, \"compiled_vs_wheel\": {}, \
         \"otf_vs_materialized\": {}, \"serial_vs_parallel\": {}, \
         \"fault_vs_clean\": {}}},\n  \
         \"all_pairs_exercised\": {},\n  \"findings\": [{}],\n  \
         \"cache_hits\": {},\n  \"synthesized\": {},\n  \"shared\": {},\n  \
         \"disk_cache\": {},\n  \"wall_s\": {:.6}\n}}\n",
        report.seed,
        report.designs,
        report.checks.heap_vs_wheel,
        report.checks.compiled_vs_wheel,
        report.checks.otf_vs_materialized,
        report.checks.serial_vs_parallel,
        report.checks.fault_vs_clean,
        report.checks.all_exercised(),
        findings,
        report.cache_hits,
        report.synthesized,
        report.shared,
        cache.disk().is_some(),
        report.wall_s
    );
    emit_report("BENCH_gauntlet.json", &json)?;
    for f in &report.findings {
        eprintln!(
            "gauntlet_report: {} diverged on {} ({} {}, seed {:#x})",
            f.design, f.oracle, f.family, f.params, f.seed
        );
    }
    export_trace_if_enabled()?;
    Ok(report.clean())
}
