//! Perf-regression sentinel: diffs a freshly generated `BENCH_flow.json` /
//! `BENCH_sim.json` against the committed baselines.
//!
//! Two gate policies, chosen per metric:
//!
//! - **Exact** — structural counts (controllers, cache hits/misses, shape
//!   counts, event counts, lane counts). These are deterministic functions
//!   of the design set, so *any* drift is a real behavioural change and
//!   fails the gate.
//! - **Ratio** — timing ratios (`speedup`, `auto_speedup_vs_exact`,
//!   `compiled_vs_wheel`). Wall-clock ratios move with host load, so the
//!   gate only fires on a collapse: the fresh value may not fall below
//!   [`RATIO_FLOOR`] of the baseline. That is deliberately weaker than the
//!   tier-1 script's own absolute thresholds (e.g. "compiled ≥ 5x wheel")
//!   — the sentinel catches a ratio cratering *relative to what this repo
//!   last recorded*, wherever the absolute bar happens to sit on the host.
//!
//! Absolute seconds are not gated at all: comparing wall seconds across
//! machines is noise, and the ratios already normalize them away.

use crate::report::escape;
use std::fmt;

/// A gated ratio metric may not fall below this fraction of its baseline
/// (an 80% relative regression fails; improvements always pass).
pub const RATIO_FLOOR: f64 = 0.2;

/// How a metric is judged against its baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Structural count: fresh must equal baseline exactly.
    Exact,
    /// Timing ratio: fresh must be at least `RATIO_FLOOR` x baseline.
    Ratio,
}

/// One gated metric: where to find it and how to judge it.
#[derive(Debug, Clone, Copy)]
pub struct Spec {
    /// The top-level JSON array the per-design blocks live in
    /// (`"designs"` or `"backends"`).
    pub section: &'static str,
    /// The field name inside each design block (matched as `"field":`, so
    /// `speedup` does not collide with `auto_speedup_vs_exact`).
    pub field: &'static str,
    /// Exact or ratio-floor gating.
    pub policy: Policy,
}

/// The gated metrics of `BENCH_flow.json`.
pub const FLOW_SPECS: &[Spec] = &[
    Spec { section: "designs", field: "controllers", policy: Policy::Exact },
    Spec { section: "designs", field: "cache_hits", policy: Policy::Exact },
    Spec { section: "designs", field: "cache_misses", policy: Policy::Exact },
    Spec { section: "designs", field: "shapes", policy: Policy::Exact },
    Spec { section: "designs", field: "speedup", policy: Policy::Ratio },
    Spec { section: "designs", field: "auto_speedup_vs_exact", policy: Policy::Ratio },
];

/// The gated metrics of `BENCH_sim.json`.
pub const SIM_SPECS: &[Spec] = &[
    Spec { section: "designs", field: "events", policy: Policy::Exact },
    Spec { section: "backends", field: "lanes", policy: Policy::Exact },
    Spec { section: "backends", field: "events", policy: Policy::Exact },
    Spec { section: "backends", field: "compiled_vs_wheel", policy: Policy::Ratio },
];

/// One gate violation: the metric, both values, and why it failed.
#[derive(Debug, Clone, PartialEq)]
pub struct Breach {
    /// The section the metric came from (`designs` / `backends`).
    pub section: String,
    /// The design the block belongs to.
    pub design: String,
    /// The metric field name.
    pub metric: String,
    /// The committed baseline value (`None` when the *fresh* side lost the
    /// design or field entirely).
    pub baseline: Option<f64>,
    /// The fresh value (`None` when missing).
    pub current: Option<f64>,
    /// The judging policy.
    pub policy: Policy,
}

impl fmt::Display for Breach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fmt_opt = |v: Option<f64>| v.map_or("missing".to_string(), |v| format!("{v}"));
        write!(
            f,
            "{}/{}/{}: baseline {} current {} ({})",
            self.section,
            self.design,
            self.metric,
            fmt_opt(self.baseline),
            fmt_opt(self.current),
            match self.policy {
                Policy::Exact => "must match exactly",
                Policy::Ratio => "fell below the ratio floor",
            }
        )
    }
}

impl Breach {
    /// The breach as a flat JSON object (for the verdict report).
    pub fn to_json(&self) -> String {
        let num = |v: Option<f64>| v.map_or("null".to_string(), |v| format!("{v}"));
        format!(
            "{{\"section\": \"{}\", \"design\": \"{}\", \"metric\": \"{}\", \
             \"baseline\": {}, \"current\": {}, \"policy\": \"{}\"}}",
            escape(&self.section),
            escape(&self.design),
            escape(&self.metric),
            num(self.baseline),
            num(self.current),
            match self.policy {
                Policy::Exact => "exact",
                Policy::Ratio => "ratio",
            }
        )
    }
}

/// The outcome of one file comparison.
#[derive(Debug, Clone, Default)]
pub struct Outcome {
    /// Metrics actually compared (baseline design x spec pairs found).
    pub checked: usize,
    /// Gate violations, in baseline order.
    pub breaches: Vec<Breach>,
    /// Structured "no baseline" reasons: a baseline file that is absent,
    /// empty, or contains no comparable entries. A sentinel with nothing
    /// to compare against must fail loudly, not pass vacuously — a fresh
    /// report added without a committed baseline would otherwise read as
    /// green forever.
    pub no_baseline: Vec<String>,
}

impl Outcome {
    /// Whether every gate held — requires both zero breaches and at least
    /// one usable baseline behind every comparison.
    pub fn pass(&self) -> bool {
        self.breaches.is_empty() && self.no_baseline.is_empty()
    }

    /// Folds another file's outcome into this one.
    pub fn merge(&mut self, other: Outcome) {
        self.checked += other.checked;
        self.breaches.extend(other.breaches);
        self.no_baseline.extend(other.no_baseline);
    }
}

/// Extracts the text of the `"<section>": [ ... ]` array, bracket-matched
/// with JSON string awareness (the baseline `note` fields are free-form
/// prose).
fn section_text<'a>(text: &'a str, section: &str) -> Option<&'a str> {
    let needle = format!("\"{section}\": [");
    let start = text.find(&needle)? + needle.len();
    let bytes = text.as_bytes();
    let mut depth = 1usize;
    let mut in_str = false;
    let mut esc = false;
    for (i, &b) in bytes[start..].iter().enumerate() {
        if esc {
            esc = false;
            continue;
        }
        match b {
            b'\\' if in_str => esc = true,
            b'"' => in_str = !in_str,
            b'[' if !in_str => depth += 1,
            b']' if !in_str => {
                depth -= 1;
                if depth == 0 {
                    return Some(&text[start..start + i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Splits a section's text into per-design `{...}` blocks (depth-matched;
/// blocks nest objects like `"phases": {...}`).
fn blocks(section: &str) -> Vec<&str> {
    let bytes = section.as_bytes();
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut esc = false;
    let mut open = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        if esc {
            esc = false;
            continue;
        }
        match b {
            b'\\' if in_str => esc = true,
            b'"' => in_str = !in_str,
            b'{' if !in_str => {
                if depth == 0 {
                    open = i;
                }
                depth += 1;
            }
            b'}' if !in_str => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    out.push(&section[open..=i]);
                }
            }
            _ => {}
        }
    }
    out
}

/// Pulls `"field": <number>` out of one design block.
fn number_field(block: &str, field: &str) -> Option<f64> {
    let needle = format!("\"{field}\":");
    let at = block.find(&needle)? + needle.len();
    let rest = block[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Pulls the design name out of one block.
fn design_name(block: &str) -> Option<&str> {
    let needle = "\"design\": \"";
    let at = block.find(needle)? + needle.len();
    block[at..].find('"').map(|end| &block[at..at + end])
}

/// Compares one fresh report against its baseline under `specs`. Iterates
/// the *baseline's* designs: a design or gated field the fresh report
/// lost is itself a breach (the benchmark surface shrank), while designs
/// only the fresh side has are ignored (growth is not a regression).
pub fn compare(baseline: &str, current: &str, specs: &[Spec]) -> Outcome {
    let mut outcome = Outcome::default();
    let sections: Vec<&'static str> = {
        let mut s: Vec<&'static str> = specs.iter().map(|sp| sp.section).collect();
        s.dedup();
        s
    };
    for section in sections {
        let base_blocks = section_text(baseline, section).map(blocks).unwrap_or_default();
        let cur_text = section_text(current, section);
        let cur_blocks = cur_text.map(blocks).unwrap_or_default();
        for base_block in base_blocks {
            let Some(design) = design_name(base_block) else {
                continue;
            };
            let cur_block = cur_blocks
                .iter()
                .find(|b| design_name(b) == Some(design))
                .copied();
            for spec in specs.iter().filter(|sp| sp.section == section) {
                let base_value = number_field(base_block, spec.field);
                let cur_value = cur_block.and_then(|b| number_field(b, spec.field));
                let Some(base_value) = base_value else {
                    // The baseline itself lacks the field (e.g. an old
                    // schema); nothing to gate against.
                    continue;
                };
                outcome.checked += 1;
                let breach = |cur: Option<f64>| Breach {
                    section: section.to_string(),
                    design: design.to_string(),
                    metric: spec.field.to_string(),
                    baseline: Some(base_value),
                    current: cur,
                    policy: spec.policy,
                };
                match cur_value {
                    None => outcome.breaches.push(breach(None)),
                    Some(cur) => {
                        let bad = match spec.policy {
                            Policy::Exact => cur != base_value,
                            Policy::Ratio => cur < base_value * RATIO_FLOOR,
                        };
                        if bad {
                            outcome.breaches.push(breach(Some(cur)));
                        }
                    }
                }
            }
        }
    }
    // A baseline that yielded nothing to check is an empty or schema-less
    // file, not a clean bill of health.
    if outcome.checked == 0 {
        outcome
            .no_baseline
            .push("baseline contains no comparable metric entries".to_string());
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    const FLOW: &str = r#"{
  "bench": "flow_e2e",
  "note": "brackets in prose [do] not confuse the scanner",
  "designs": [
    {"design": "A", "controllers": 3, "cache_hits": 1, "cache_misses": 2, "speedup": 1.5, "backends": {"auto_speedup_vs_exact": 2.0}, "phases": {"shapes": 2}},
    {"design": "B", "controllers": 12, "cache_hits": 7, "cache_misses": 5, "speedup": 1.2, "backends": {"auto_speedup_vs_exact": 20.0}, "phases": {"shapes": 5}}
  ]
}"#;

    #[test]
    fn identical_reports_pass() {
        let outcome = compare(FLOW, FLOW, FLOW_SPECS);
        assert!(outcome.pass(), "breaches: {:?}", outcome.breaches);
        // 2 designs x 6 specs, all present.
        assert_eq!(outcome.checked, 12);
    }

    #[test]
    fn structural_drift_breaches_exactly() {
        let drifted = FLOW.replace("\"controllers\": 12", "\"controllers\": 15");
        let outcome = compare(FLOW, &drifted, FLOW_SPECS);
        assert_eq!(outcome.breaches.len(), 1);
        let b = &outcome.breaches[0];
        assert_eq!((b.design.as_str(), b.metric.as_str()), ("B", "controllers"));
        assert_eq!((b.baseline, b.current), (Some(12.0), Some(15.0)));
        assert_eq!(b.policy, Policy::Exact);
    }

    #[test]
    fn ratio_floor_tolerates_noise_but_not_collapse() {
        // 1.5 -> 0.9 is a 40% regression: inside the floor, passes.
        let noisy = FLOW.replace("\"speedup\": 1.5", "\"speedup\": 0.9");
        assert!(compare(FLOW, &noisy, FLOW_SPECS).pass());
        // 20.0 -> 1.0 is a 95% collapse: breaches.
        let collapsed = FLOW.replace("\"auto_speedup_vs_exact\": 20.0", "\"auto_speedup_vs_exact\": 1.0");
        let outcome = compare(FLOW, &collapsed, FLOW_SPECS);
        assert_eq!(outcome.breaches.len(), 1);
        assert_eq!(outcome.breaches[0].metric, "auto_speedup_vs_exact");
        assert_eq!(outcome.breaches[0].policy, Policy::Ratio);
        // Improvements always pass.
        let improved = FLOW.replace("\"speedup\": 1.2", "\"speedup\": 99.0");
        assert!(compare(FLOW, &improved, FLOW_SPECS).pass());
    }

    #[test]
    fn lost_design_and_lost_field_breach() {
        let lost_design = FLOW.replace("\"design\": \"B\"", "\"design\": \"Z\"");
        let outcome = compare(FLOW, &lost_design, FLOW_SPECS);
        // All six of B's gated metrics go missing.
        assert_eq!(outcome.breaches.len(), 6);
        assert!(outcome.breaches.iter().all(|b| b.design == "B" && b.current.is_none()));

        let lost_field = FLOW.replace("\"cache_hits\": 7, ", "");
        let outcome = compare(FLOW, &lost_field, FLOW_SPECS);
        assert_eq!(outcome.breaches.len(), 1);
        assert_eq!(outcome.breaches[0].metric, "cache_hits");
    }

    #[test]
    fn empty_baseline_is_a_structured_no_baseline_verdict() {
        // An empty or schema-less baseline used to yield checked=0 with
        // zero breaches — a vacuous pass. It must fail with an explicit
        // reason instead.
        for baseline in ["", "{}", "{\n  \"bench\": \"flow_e2e\"\n}"] {
            let outcome = compare(baseline, FLOW, FLOW_SPECS);
            assert_eq!(outcome.checked, 0);
            assert!(outcome.breaches.is_empty());
            assert_eq!(outcome.no_baseline.len(), 1, "baseline {baseline:?}");
            assert!(!outcome.pass(), "baseline {baseline:?} must not pass");
        }
        // A real baseline never trips the verdict.
        assert!(compare(FLOW, FLOW, FLOW_SPECS).no_baseline.is_empty());
    }

    #[test]
    fn merge_carries_no_baseline_reasons() {
        let mut a = compare(FLOW, FLOW, FLOW_SPECS);
        assert!(a.pass());
        a.merge(compare("", FLOW, FLOW_SPECS));
        assert!(!a.pass());
        assert_eq!(a.no_baseline.len(), 1);
    }

    #[test]
    fn speedup_needle_does_not_match_longer_names() {
        // A block whose only "speedup"-like field is the nested backend
        // ratio must read as missing `speedup`, not silently borrow it.
        let block = r#"{"design": "A", "backends": {"auto_speedup_vs_exact": 2.0}}"#;
        assert_eq!(number_field(block, "speedup"), None);
        assert_eq!(number_field(block, "auto_speedup_vs_exact"), Some(2.0));
    }

    #[test]
    fn sim_sections_gate_independently() {
        let sim = r#"{
  "designs": [
    {"design": "A", "events": 60, "wheel": {"wall_s": 0.1}}
  ],
  "backends": [
    {"design": "A", "lanes": 64, "events": 3840, "compiled_vs_wheel": 8.0}
  ]
}"#;
        assert!(compare(sim, sim, SIM_SPECS).pass());
        // The designs-section event count and the backends-section event
        // count are distinct gates.
        let drifted = sim.replace("\"events\": 3840", "\"events\": 3841");
        let outcome = compare(sim, &drifted, SIM_SPECS);
        assert_eq!(outcome.breaches.len(), 1);
        assert_eq!(outcome.breaches[0].section, "backends");
    }
}
