//! Reference values from the paper, used when printing comparisons.

/// One row of the paper's Table 3.
#[derive(Debug, Clone, Copy)]
pub struct Table3Row {
    /// Design name as printed.
    pub name: &'static str,
    /// Unoptimized speed (ns).
    pub unopt_ns: f64,
    /// Optimized speed (ns).
    pub opt_ns: f64,
    /// Speed improvement (%).
    pub improvement: f64,
    /// Unoptimized area (the paper prints mm² ×10³).
    pub unopt_area: f64,
    /// Optimized area.
    pub opt_area: f64,
    /// Area overhead (%).
    pub overhead: f64,
}

/// The paper's Table 3.
pub const TABLE3: [Table3Row; 4] = [
    Table3Row {
        name: "Systolic counter",
        unopt_ns: 51.29,
        opt_ns: 40.43,
        improvement: 21.16,
        unopt_area: 39.68,
        opt_area: 50.43,
        overhead: 27.09,
    },
    Table3Row {
        name: "Wagging register",
        unopt_ns: 49.82,
        opt_ns: 42.43,
        improvement: 14.83,
        unopt_area: 228.93,
        opt_area: 283.71,
        overhead: 23.92,
    },
    Table3Row {
        name: "Stack",
        unopt_ns: 121.58,
        opt_ns: 107.70,
        improvement: 11.41,
        unopt_area: 282.48,
        opt_area: 335.19,
        overhead: 18.66,
    },
    Table3Row {
        name: "Microprocessor core",
        unopt_ns: 66.48,
        opt_ns: 60.65,
        improvement: 8.76,
        unopt_area: 453.76,
        opt_area: 563.47,
        overhead: 24.17,
    },
];

/// Fig. 3 state counts: sequencer, call, passivator.
pub const FIG3_STATES: [(&str, usize); 3] = [("sequencer", 6), ("call", 7), ("passivator", 2)];

/// Fig. 4: the merged decision-wait + sequencer controller has 11 states.
pub const FIG4_MERGED_STATES: usize = 11;

/// Fig. 5: the distributed-call result has 6 states.
pub const FIG5_RESULT_STATES: usize = 6;
