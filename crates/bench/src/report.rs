//! The epilogue every report binary shares.
//!
//! Each bench bin follows the same contract: stdout is pure JSON (one
//! report object, or one object per line), the human-readable narration
//! goes to stderr via `bmbe_obs::vlog!`, errors surface as a single
//! `error: <bin>: ...` stderr line with a non-zero exit, and a report
//! destined for a `BENCH_*.json` file is written there *and* echoed to
//! stdout. That boilerplate used to be copied into `perf_report`,
//! `sim_report`, and `batch_report` separately; it lives here so
//! `trace_report` and `bench_trend` don't copy it a fourth and fifth
//! time.

use std::process::ExitCode;

/// Escapes a string for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Parses `--flag VALUE` as a number, with a default. Shared by every bin
/// that takes numeric knobs (`--replicas`, `--threads`, ...).
///
/// # Errors
///
/// The flag is present without a value, or the value does not parse.
pub fn flag(args: &[String], name: &str, default: usize) -> Result<usize, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(default),
        Some(i) => args
            .get(i + 1)
            .ok_or_else(|| format!("{name} needs a value"))?
            .parse()
            .map_err(|e| format!("{name}: {e}")),
    }
}

/// Parses `--flag VALUE` as a string, with no default.
pub fn flag_str(args: &[String], name: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .cloned()
            .map(Some)
            .ok_or_else(|| format!("{name} needs a value")),
    }
}

/// The shared `main` body: run `body`, map `Ok(true)` to success,
/// `Ok(false)` to a silent failure exit (the body already reported), and
/// `Err` to the single structured `error: <bin>: ...` stderr line. Stdout
/// stays pure JSON either way.
pub fn run_main(bin: &str, body: impl FnOnce() -> Result<bool, String>) -> ExitCode {
    match body() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {bin}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Writes a finished JSON report to `path`, echoes it to stdout (the
/// machine-readable channel), and narrates the write on stderr.
///
/// # Errors
///
/// The filesystem write failed.
pub fn emit_report(path: &str, json: &str) -> Result<(), String> {
    std::fs::write(path, json).map_err(|e| format!("write {path}: {e}"))?;
    print!("{json}");
    bmbe_obs::vlog!(1, "wrote {path}");
    Ok(())
}

/// Writes a drained trace as both a Chrome trace (`BMBE_TRACE_OUT`,
/// default `trace.json`) and a self-describing JSONL stream next to it
/// (`.json` stem swapped for `.jsonl`). Returns `(chrome_path,
/// jsonl_path)`.
///
/// # Errors
///
/// Either filesystem write failed.
pub fn write_trace_files(trace: &bmbe_obs::export::Trace) -> Result<(String, String), String> {
    let out_path = bmbe_obs::trace_out_path();
    let jsonl_path = bmbe_obs::sibling_out_path(&out_path, "jsonl");
    let chrome = bmbe_obs::export::export_chrome(trace);
    std::fs::write(&out_path, &chrome).map_err(|e| format!("write {out_path}: {e}"))?;
    let jsonl = bmbe_obs::export::export_jsonl(trace);
    std::fs::write(&jsonl_path, &jsonl).map_err(|e| format!("write {jsonl_path}: {e}"))?;
    bmbe_obs::vlog!(1, "wrote {out_path} and {jsonl_path}");
    Ok((out_path, jsonl_path))
}

/// The trace-export epilogue for bins whose *work* is the product (the
/// batch driver, the report generators): when the run was traced
/// (`BMBE_TRACE=1`), drain the rings and write the Chrome + JSONL pair so
/// a fleet of traced processes each leaves a mergeable stream behind.
/// No-op when tracing is off — the bins pay nothing by calling it
/// unconditionally.
///
/// # Errors
///
/// A trace was collected but could not be written.
pub fn export_trace_if_enabled() -> Result<Option<(String, String)>, String> {
    if !bmbe_obs::enabled() {
        return Ok(None);
    }
    bmbe_obs::set_enabled(false);
    let trace = bmbe_obs::flush();
    write_trace_files(&trace).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_json_metacharacters() {
        assert_eq!(escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape("x\ny\tz\r"), "x\\ny\\tz\\r");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn flag_parses_and_defaults() {
        let args: Vec<String> = ["--replicas", "7"].iter().map(|s| s.to_string()).collect();
        assert_eq!(flag(&args, "--replicas", 3).unwrap(), 7);
        assert_eq!(flag(&args, "--threads", 4).unwrap(), 4);
        assert!(flag(&["--replicas".to_string()], "--replicas", 3).is_err());
        assert!(flag(&["--replicas".into(), "x".into()], "--replicas", 3).is_err());
        let sargs: Vec<String> = ["--out", "p.json"].iter().map(|s| s.to_string()).collect();
        assert_eq!(flag_str(&sargs, "--out").unwrap().as_deref(), Some("p.json"));
        assert_eq!(flag_str(&sargs, "--in").unwrap(), None);
    }
}
