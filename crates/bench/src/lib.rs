#![warn(missing_docs)]
//! # bmbe-bench
//!
//! The experiment harness: one binary per table/figure of the paper
//! (`table1`, `table2`, `fig3`, `fig4`, `fig5`, `verify43`, `table3`) plus
//! ablations (`ablation_minmode`, `ablation_mapping`,
//! `ablation_clustering`), and Criterion micro-benchmarks of the synthesis
//! algorithms. Paper reference values live in [`paper`]; the shared
//! report-binary epilogue (pure-JSON stdout, `BENCH_*.json` emission,
//! trace export) lives in [`report`]; the perf-regression gates the
//! `bench_trend` sentinel applies live in [`trend`].

pub mod paper;
pub mod report;
pub mod trend;
