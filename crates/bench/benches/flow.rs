//! Criterion benchmarks of the end-to-end flow and simulation on the
//! benchmark designs (the Table 3 machinery itself).

use bmbe_designs::scenarios::{stack, systolic_counter};
use bmbe_flow::{run_control_flow, simulate, to_flow_scenario, FlowOptions};
use bmbe_gates::Library;
use bmbe_sim::prims::Delays;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_control_flow(c: &mut Criterion) {
    let mut g = c.benchmark_group("control_flow");
    g.sample_size(10);
    let counter = systolic_counter().expect("design builds");
    let lib = Library::cmos035();
    g.bench_function("counter_unoptimized", |b| {
        b.iter(|| {
            run_control_flow(
                black_box(&counter.compiled),
                &FlowOptions::unoptimized(),
                &lib,
            )
            .expect("flow runs")
        })
    });
    g.bench_function("counter_optimized", |b| {
        b.iter(|| {
            run_control_flow(
                black_box(&counter.compiled),
                &FlowOptions::optimized(),
                &lib,
            )
            .expect("flow runs")
        })
    });
    g.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation");
    g.sample_size(10);
    let lib = Library::cmos035();
    let delays = Delays::default();
    let design = stack().expect("design builds");
    let flow =
        run_control_flow(&design.compiled, &FlowOptions::optimized(), &lib).expect("flow runs");
    let scenario = to_flow_scenario(&design.scenario);
    g.bench_function("stack_benchmark_run", |b| {
        b.iter(|| {
            simulate(black_box(&design.compiled), &flow, &scenario, &delays).expect("simulates")
        })
    });
    g.finish();
}

criterion_group!(benches, bench_control_flow, bench_simulation);
criterion_main!(benches);
