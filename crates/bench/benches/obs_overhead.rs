//! Pins the cost of a *disabled* trace callsite — the zero-overhead claim
//! `bmbe-obs` makes: with `BMBE_TRACE` unset, a `span!` is one relaxed
//! atomic load plus one thread-local flag read, an `event!` is one atomic
//! load. The loops below hit a callsite a million times per iteration so
//! the per-callsite number is readable straight off the printed median
//! (median / 1e6). `tests/obs_overhead.rs` turns the same measurement into
//! the <2% budget assertion against a real flow run.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const CALLS: usize = 1_000_000;

fn disabled_callsites(c: &mut Criterion) {
    bmbe_obs::set_enabled(false);
    let mut group = c.benchmark_group("obs_disabled");
    group.sample_size(20);
    group.bench_function("span_1m", |b| {
        b.iter(|| {
            for i in 0..CALLS {
                let _g = bmbe_obs::span!("bench.disabled_span");
                black_box(i);
            }
        })
    });
    group.bench_function("event_1m", |b| {
        b.iter(|| {
            for i in 0..CALLS {
                bmbe_obs::event!("bench.disabled_event", i as i64);
            }
        })
    });
    group.bench_function("counter_1m", |b| {
        b.iter(|| {
            for i in 0..CALLS {
                bmbe_obs::trace_counter!("bench.disabled_counter", 1);
                black_box(i);
            }
        })
    });
    group.finish();
}

fn enabled_span(c: &mut Criterion) {
    // The enabled side, for contrast: timestamped records into the
    // per-thread ring. Drained after each batch so the ring never saturates
    // and the number stays a recording cost, not a drop count.
    let mut group = c.benchmark_group("obs_enabled");
    group.sample_size(10);
    group.bench_function("span_100k", |b| {
        b.iter(|| {
            bmbe_obs::set_enabled(true);
            for i in 0..100_000 {
                let _g = bmbe_obs::span!("bench.enabled_span");
                black_box(i);
            }
            bmbe_obs::set_enabled(false);
            black_box(bmbe_obs::flush().events.len())
        })
    });
    group.finish();
}

criterion_group!(benches, disabled_callsites, enabled_span);
criterion_main!(benches);
