//! End-to-end control-flow benchmark: the seed's serial uncached pipeline
//! vs the content-addressed cached + parallel pipeline, per benchmark
//! design, plus the warm-cache (all-hits) re-run.

use bmbe_designs::all_designs;
use bmbe_flow::{run_control_flow, run_control_flow_with, ControllerCache, FlowOptions};
use bmbe_gates::Library;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_flow_e2e(c: &mut Criterion) {
    let library = Library::cmos035();
    let designs = all_designs().expect("shipped designs build");
    let mut g = c.benchmark_group("flow_e2e");
    g.sample_size(10);
    for design in &designs {
        g.bench_function(format!("{}_serial_uncached", design.name), |b| {
            b.iter(|| {
                run_control_flow(
                    black_box(&design.compiled),
                    &FlowOptions::optimized().serial_uncached(),
                    &library,
                )
                .expect("flow runs")
            })
        });
        g.bench_function(format!("{}_cached_parallel", design.name), |b| {
            b.iter(|| {
                // A fresh cache per iteration: measures dedup + fan-out on a
                // cold cache, the honest comparison against the seed.
                run_control_flow(
                    black_box(&design.compiled),
                    &FlowOptions::optimized(),
                    &library,
                )
                .expect("flow runs")
            })
        });
        let warm = ControllerCache::new();
        run_control_flow_with(&design.compiled, &FlowOptions::optimized(), &library, &warm)
            .expect("warm-up run");
        g.bench_function(format!("{}_warm_cache", design.name), |b| {
            b.iter(|| {
                run_control_flow_with(
                    black_box(&design.compiled),
                    &FlowOptions::optimized(),
                    &library,
                    &warm,
                )
                .expect("flow runs")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_flow_e2e);
criterion_main!(benches);
