//! Micro-benchmarks of the checking-side kernels: the event-wheel scheduler
//! against the seed's binary-heap scheduler, both on raw queue traffic and
//! on the full Microprocessor-core benchmark scenario; the bit-parallel
//! compiled backend against the wheel on a 64-scenario batch (and the pure
//! tape run with compilation hoisted out); plus on-the-fly against
//! materialized ACR trace verification on the paper's
//! decision-wait/sequencer obligation.

use bmbe_core::components::{decision_wait, sequencer};
use bmbe_core::opt::{verify_acr, verify_acr_materialized};
use bmbe_designs::scenarios::Design;
use bmbe_designs::{all_designs, scenario_variants};
use bmbe_flow::{
    batch_input_ports, compile_sim, run_control_flow, simulate_scenarios, simulate_with,
    to_flow_scenario, FlowOptions, FlowResult, Scenario, SimBackend,
};
use bmbe_gates::Library;
use bmbe_sim::prims::Delays;
use bmbe_sim::{EventWheel, SchedulerKind, LANES};
use criterion::{criterion_group, criterion_main, Criterion};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hint::black_box;

/// Deterministic delta stream for the raw-queue benchmarks (splitmix64).
fn deltas(n: usize) -> Vec<u64> {
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            // Mostly near-future events with an occasional far outlier,
            // mimicking gate delays plus environment timeouts.
            if z % 50 == 0 {
                60_000 + z % 200_000
            } else {
                z % 4_000
            }
        })
        .collect()
}

fn bench_queues(c: &mut Criterion) {
    const N: usize = 10_000;
    let ds = deltas(N);
    let mut g = c.benchmark_group("sim_kernels");
    g.sample_size(20);
    // Steady-state traffic: keep ~64 events in flight, push one, pop one.
    g.bench_function("queue_wheel/steady_10k", |b| {
        b.iter(|| {
            let mut q = EventWheel::new();
            let mut now = 0u64;
            for (i, &d) in ds.iter().take(64).enumerate() {
                q.push(now + d, i as u64, i as u32);
            }
            for (i, &d) in ds.iter().enumerate().skip(64) {
                let (t, _, slot) = q.pop().expect("queue keeps 64 in flight");
                now = t;
                q.push(now + d, i as u64, slot);
            }
            while let Some(e) = q.pop() {
                black_box(e);
            }
        })
    });
    g.bench_function("queue_heap/steady_10k", |b| {
        b.iter(|| {
            let mut q: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
            let mut now = 0u64;
            for (i, &d) in ds.iter().take(64).enumerate() {
                q.push(Reverse((now + d, i as u64, i as u32)));
            }
            for (i, &d) in ds.iter().enumerate().skip(64) {
                let Reverse((t, _, slot)) = q.pop().expect("queue keeps 64 in flight");
                now = t;
                q.push(Reverse((now + d, i as u64, slot)));
            }
            while let Some(e) = q.pop() {
                black_box(e);
            }
        })
    });
    g.finish();
}

/// A chain inverter for the engine-level ring benchmark.
struct RingInv {
    input: bmbe_sim::NodeId,
    output: bmbe_sim::NodeId,
    delay: u64,
}

impl bmbe_sim::Primitive for RingInv {
    fn init(&mut self, ctx: &mut bmbe_sim::Ctx<'_>) {
        let v = ctx.get(self.input);
        ctx.set_after(self.output, !v, self.delay);
    }
    fn on_change(&mut self, ctx: &mut bmbe_sim::Ctx<'_>, _node: bmbe_sim::NodeId) {
        let v = ctx.get(self.input);
        ctx.set_after(self.output, !v, self.delay);
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Engine-only throughput: `rings` independent 2-inverter oscillators give
/// a steady queue depth of `rings` with trivial primitives, isolating the
/// scheduler + dispatch cost from controller/datapath evaluation.
fn run_rings(kind: SchedulerKind, rings: usize, events: u64) -> u64 {
    let mut sim = bmbe_sim::Sim::with_scheduler(kind);
    for r in 0..rings {
        let a = sim.node(&format!("a{r}"));
        let b = sim.node(&format!("b{r}"));
        // Co-prime-ish delays desynchronize the rings.
        let d = 97 + (r as u64 % 61) * 13;
        sim.add_prim(Box::new(RingInv { input: a, output: b, delay: d }), &[a]);
        sim.add_prim(Box::new(RingInv { input: b, output: a, delay: d + 6 }), &[b]);
    }
    sim.init();
    sim.run_until(|s| s.events_processed >= events, u64::MAX);
    sim.events_processed
}

fn bench_engine_rings(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_kernels");
    g.sample_size(20);
    for rings in [4usize, 256] {
        for kind in [SchedulerKind::Wheel, SchedulerKind::Heap] {
            let label = match kind {
                SchedulerKind::Wheel => "rings_wheel",
                _ => "rings_heap",
            };
            g.bench_function(format!("{label}/depth_{rings}"), |b| {
                b.iter(|| black_box(run_rings(kind, rings, 40_000)))
            });
        }
    }
    g.finish();
}

/// The Microprocessor-core design with its optimized flow and scenario.
fn micro_core() -> (Design, FlowResult, Scenario) {
    let library = Library::cmos035();
    let designs = all_designs().expect("shipped designs build");
    let micro = designs
        .into_iter()
        .find(|d| d.name.contains("Microprocessor"))
        .expect("Microprocessor core design");
    let flow = run_control_flow(&micro.compiled, &FlowOptions::optimized(), &library)
        .expect("flow");
    let scenario = to_flow_scenario(&micro.scenario);
    (micro, flow, scenario)
}

fn bench_simulation(c: &mut Criterion) {
    let (micro, flow, scenario) = micro_core();
    let delays = Delays::default();
    let mut g = c.benchmark_group("sim_kernels");
    g.sample_size(20);
    for kind in [SchedulerKind::Wheel, SchedulerKind::Heap] {
        let label = match kind {
            SchedulerKind::Wheel => "simulate_wheel",
            _ => "simulate_heap",
        };
        g.bench_function(format!("{label}/{}", micro.name), |b| {
            b.iter(|| {
                let run = simulate_with(
                    black_box(&micro.compiled),
                    black_box(&flow),
                    &scenario,
                    &delays,
                    kind,
                )
                .expect("simulates");
                assert!(run.completed);
                run
            })
        });
    }
    g.finish();
}

/// Lane-evaluation kernels of the compiled backend: the same 64-scenario
/// Microprocessor-core batch on each backend (compile amortized once per
/// batch for the compiled side, exactly as `simulate_scenarios` runs it),
/// plus the pure tape run with compilation hoisted out of the loop.
fn bench_compiled_lanes(c: &mut Criterion) {
    let (micro, flow, _) = micro_core();
    let delays = Delays::default();
    let seed = micro.name.bytes().map(u64::from).sum::<u64>() * 0x9e37_79b9;
    let scenarios: Vec<Scenario> = scenario_variants(&micro, LANES, seed)
        .iter()
        .map(to_flow_scenario)
        .collect();
    let mut g = c.benchmark_group("sim_kernels");
    g.sample_size(10);
    for backend in [SimBackend::Compiled, SimBackend::EventWheel] {
        g.bench_function(format!("batch64_{}/{}", backend.name(), micro.name), |b| {
            b.iter(|| {
                let runs = simulate_scenarios(
                    black_box(&micro.compiled),
                    black_box(&flow),
                    &scenarios,
                    &delays,
                    backend,
                    1,
                    None,
                );
                for r in &runs {
                    assert!(r.as_ref().expect("simulates").completed);
                }
                runs
            })
        });
    }
    // Tape evaluation alone: one compile, 64 lanes per iteration.
    let cs = compile_sim(&micro.compiled, &flow, &batch_input_ports(&scenarios), None)
        .expect("compiles");
    g.bench_function(format!("lanes_precompiled/{}", micro.name), |b| {
        b.iter(|| {
            let runs = cs.run_batch(black_box(&scenarios)).expect("runs");
            assert!(runs.iter().all(|r| r.completed));
            runs
        })
    });
    g.finish();
}

fn bench_verification(c: &mut Criterion) {
    let dw = decision_wait(
        "a1",
        &["i1".to_string(), "i2".to_string()],
        &["o1".to_string(), "o2".to_string()],
    );
    let seq = sequencer("o2", &["c1".to_string(), "c2".to_string()]);
    let mut g = c.benchmark_group("sim_kernels");
    g.sample_size(20);
    g.bench_function("verify_otf/decision_wait+sequencer", |b| {
        b.iter(|| {
            let verdict = verify_acr(black_box(&dw), black_box(&seq), "o2").expect("verifies");
            assert!(verdict.is_equivalent());
            verdict
        })
    });
    g.bench_function("verify_materialized/decision_wait+sequencer", |b| {
        b.iter(|| {
            let verdict = verify_acr_materialized(black_box(&dw), black_box(&seq), "o2")
                .expect("verifies");
            assert!(verdict.is_equivalent());
            verdict
        })
    });
    g.finish();
}

criterion_group!(
    kernels,
    bench_queues,
    bench_engine_rings,
    bench_simulation,
    bench_compiled_lanes,
    bench_verification
);
criterion_main!(kernels);
