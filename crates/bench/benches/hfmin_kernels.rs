//! Micro-benchmarks of the synthesis kernels on real workloads: DHF-prime
//! generation (canonical-ascent worklist vs the seed's exhaustive
//! expansion), full hazard-free minimization (primes + covering), and the
//! mapped-netlist equivalence check (cube-algebraic vs the seed's pointwise
//! sweep), all on the hardest controller of the Microprocessor-core
//! benchmark design.

use bmbe_designs::all_designs;
use bmbe_flow::{run_control_flow, ControllerArtifact, FlowOptions};
use bmbe_gates::{verify_equivalence_algebraic, verify_equivalence_pointwise, Library};
use bmbe_logic::hfmin::{MinimizeBackend, MinimizeOptions};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// The Microprocessor core's hardest controller and function, picked by
/// actually timing one prime-generation pass per function: structural
/// proxies (variable or product counts) miss the worst case, which is
/// decided by how the OFF-set obstructs expansion.
fn hardest_controller() -> (ControllerArtifact, usize) {
    let library = Library::cmos035();
    let designs = all_designs().expect("shipped designs build");
    let micro = designs
        .iter()
        .find(|d| d.name.contains("Microprocessor"))
        .expect("Microprocessor core design");
    let mut result = run_control_flow(
        &micro.compiled,
        &FlowOptions::optimized().serial_uncached(),
        &library,
    )
    .expect("flow");
    let prime_time = |s: &bmbe_logic::hfmin::FunctionSpec| {
        let t = std::time::Instant::now();
        let _ = black_box(s.dhf_primes());
        t.elapsed()
    };
    let (idx, fi) = result
        .controllers
        .iter()
        .enumerate()
        .flat_map(|(i, c)| (0..c.controller.function_specs.len()).map(move |f| (i, f)))
        .max_by_key(|&(i, f)| prime_time(&result.controllers[i].controller.function_specs[f]))
        .expect("at least one function");
    (result.controllers.swap_remove(idx), fi)
}

fn bench_kernels(c: &mut Criterion) {
    let (artifact, fi) = hardest_controller();
    let spec = &artifact.controller.function_specs[fi];
    let name = &artifact.name;

    let mut g = c.benchmark_group("hfmin_kernels");
    g.sample_size(20);
    g.bench_function(format!("primes_canonical_ascent/{name}"), |b| {
        b.iter(|| black_box(spec).dhf_primes().expect("primes"))
    });
    g.bench_function(format!("primes_reference_expansion/{name}"), |b| {
        b.iter(|| black_box(spec).dhf_primes_reference().expect("primes"))
    });
    g.bench_function(format!("primes_partitioned_4t/{name}"), |b| {
        b.iter(|| black_box(spec).dhf_primes_par(4).expect("primes"))
    });
    g.bench_function(format!("minimize_primes_plus_covering/{name}"), |b| {
        b.iter(|| black_box(spec).minimize().expect("minimizes"))
    });
    let exact = MinimizeOptions {
        backend: MinimizeBackend::ExactPrimes,
        ..MinimizeOptions::default()
    };
    g.bench_function(format!("minimize_exact_backend/{name}"), |b| {
        b.iter(|| black_box(spec).minimize_opts(&exact).expect("minimizes"))
    });
    let cofactor = MinimizeOptions {
        backend: MinimizeBackend::CubeCofactor,
        ..MinimizeOptions::default()
    };
    g.bench_function(format!("minimize_cofactor_backend/{name}"), |b| {
        b.iter(|| black_box(spec).minimize_opts(&cofactor).expect("minimizes"))
    });
    g.bench_function(format!("equivalence_algebraic/{name}"), |b| {
        b.iter(|| {
            assert!(verify_equivalence_algebraic(
                black_box(&artifact.controller),
                black_box(&artifact.mapped)
            )
            .is_none())
        })
    });
    g.bench_function(format!("equivalence_pointwise/{name}"), |b| {
        b.iter(|| {
            assert!(verify_equivalence_pointwise(
                black_box(&artifact.controller),
                black_box(&artifact.mapped)
            )
            .is_none())
        })
    });
    g.finish();
}

criterion_group!(kernels, bench_kernels);
criterion_main!(kernels);
