//! Criterion micro-benchmarks of the synthesis algorithms: CH-to-BMS
//! compilation, hazard-free minimization, state assignment, clustering,
//! and technology mapping.

use bmbe_bm::synth::{synthesize, MinimizeMode};
use bmbe_core::compile::compile_to_bm;
use bmbe_core::components::{call, decision_wait, sequencer};
use bmbe_core::opt::cluster::{ClusterOptions, CtrlNetlist};
use bmbe_gates::{map, Library, MapObjective, MapStyle, SubjectGraph};
use bmbe_logic::Cover;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn names(n: usize, prefix: &str) -> Vec<String> {
    (0..n).map(|i| format!("{prefix}{i}")).collect()
}

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("ch_to_bms");
    for n in [2usize, 4, 8] {
        let program = sequencer("p", &names(n, "a"));
        g.bench_function(format!("sequencer_{n}"), |b| {
            b.iter(|| compile_to_bm("seq", black_box(&program)).expect("compiles"))
        });
    }
    let dw = decision_wait("a", &names(3, "i"), &names(3, "o"));
    g.bench_function("decision_wait_3", |b| {
        b.iter(|| compile_to_bm("dw", black_box(&dw)).expect("compiles"))
    });
    g.finish();
}

fn bench_synthesis(c: &mut Criterion) {
    let mut g = c.benchmark_group("hazard_free_synthesis");
    g.sample_size(20);
    for n in [2usize, 4, 8] {
        let spec = compile_to_bm("seq", &sequencer("p", &names(n, "a"))).expect("compiles");
        g.bench_function(format!("sequencer_{n}"), |b| {
            b.iter(|| synthesize(black_box(&spec), MinimizeMode::Speed).expect("synthesizes"))
        });
    }
    let spec = compile_to_bm("call", &call(&names(3, "a"), "b")).expect("compiles");
    g.bench_function("call_3", |b| {
        b.iter(|| synthesize(black_box(&spec), MinimizeMode::Speed).expect("synthesizes"))
    });
    g.finish();
}

fn bench_clustering(c: &mut Criterion) {
    let mut g = c.benchmark_group("clustering");
    g.sample_size(20);
    g.bench_function("t2_seq_call_chain", |b| {
        b.iter(|| {
            let mut netlist = CtrlNetlist::new();
            netlist.add("s1", sequencer("p", &names(2, "m")));
            netlist.add("s2", sequencer("m0", &names(2, "x")));
            netlist.add("s3", sequencer("m1", &names(2, "y")));
            netlist.add("call", call(&["x1".into(), "y1".into()], "c"));
            netlist.t2_clustering(black_box(&ClusterOptions::default()))
        })
    });
    g.finish();
}

fn bench_techmap(c: &mut Criterion) {
    let mut g = c.benchmark_group("technology_mapping");
    let spec = compile_to_bm("seq", &sequencer("p", &names(4, "a"))).expect("compiles");
    let ctrl = synthesize(&spec, MinimizeMode::Speed).expect("synthesizes");
    let functions: Vec<(String, &Cover)> = ctrl
        .outputs
        .iter()
        .cloned()
        .chain((0..ctrl.num_state_bits).map(|j| format!("y{j}")))
        .zip(
            ctrl.output_covers
                .iter()
                .chain(ctrl.next_state_covers.iter()),
        )
        .collect();
    let subject = SubjectGraph::from_covers(ctrl.num_vars(), &functions);
    let lib = Library::cmos035();
    for (label, style) in [
        ("split_modules", MapStyle::SplitModules),
        ("whole_controller", MapStyle::WholeController),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| map(black_box(&subject), &lib, MapObjective::Delay, style))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_compile,
    bench_synthesis,
    bench_clustering,
    bench_techmap
);
criterion_main!(benches);
