#!/usr/bin/env sh
# Tier-1 CI gate. Fails on the first broken step.
#
#   1. release build + full test suite (the hard acceptance floor);
#   2. every bench binary builds in release (table/figure regeneration
#      and the obs_report smoke binary);
#   3. bmbe-obs builds clean under -D warnings (new crate, zero-warning
#      policy);
#   4. obs_report --check: runs a traced Stack flow + sim + verification
#      and validates the emitted Chrome trace / JSONL / span coverage;
#   5. fault smoke: an injected fault (BMBE_FAULT=synth:0) must fail
#      perf_report with a structured error line and a nonzero exit, and
#      the same binary must then pass clean.
set -eu
cd "$(dirname "$0")/.."

echo "== tier1: build =="
cargo build --release

echo "== tier1: tests =="
cargo test -q

echo "== tier1: bench binaries =="
cargo build --release -p bmbe-bench --bins

echo "== tier1: bmbe-obs deny-warnings =="
cargo rustc -p bmbe-obs --release -- -D warnings

echo "== tier1: obs_report --check =="
BMBE_TRACE_OUT="${TMPDIR:-/tmp}/bmbe_tier1_trace.json" \
    cargo run --release -p bmbe-bench --bin obs_report -- --check >/dev/null

echo "== tier1: fault smoke =="
fault_err="${TMPDIR:-/tmp}/bmbe_tier1_fault.err"
if BMBE_FAULT=synth:0 cargo run --release -p bmbe-bench --bin perf_report \
    >/dev/null 2>"$fault_err"; then
    echo "tier1: FAIL: perf_report succeeded under BMBE_FAULT=synth:0" >&2
    exit 1
fi
if ! grep -q '^error: perf_report: ' "$fault_err"; then
    echo "tier1: FAIL: no structured error line under BMBE_FAULT=synth:0" >&2
    cat "$fault_err" >&2
    exit 1
fi
# The clean pass runs in a scratch directory so the checked-in
# BENCH_flow.json is not overwritten with this machine's timings.
fault_dir="$(mktemp -d)"
repo_root="$(pwd)"
(cd "$fault_dir" && cargo run --release \
    --manifest-path "$repo_root/Cargo.toml" \
    -p bmbe-bench --bin perf_report >/dev/null)
rm -rf "$fault_dir"

echo "tier1: all gates passed"
