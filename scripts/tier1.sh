#!/usr/bin/env sh
# Tier-1 CI gate. Fails on the first broken step.
#
#   1. release build + full test suite (the hard acceptance floor);
#   2. every bench binary builds in release (table/figure regeneration
#      and the obs_report smoke binary);
#   3. bmbe-obs builds clean under -D warnings (new crate, zero-warning
#      policy);
#   4. obs_report --check: runs a traced Stack flow + sim + verification
#      and validates the emitted Chrome trace / JSONL / span coverage.
set -eu
cd "$(dirname "$0")/.."

echo "== tier1: build =="
cargo build --release

echo "== tier1: tests =="
cargo test -q

echo "== tier1: bench binaries =="
cargo build --release -p bmbe-bench --bins

echo "== tier1: bmbe-obs deny-warnings =="
cargo rustc -p bmbe-obs --release -- -D warnings

echo "== tier1: obs_report --check =="
BMBE_TRACE_OUT="${TMPDIR:-/tmp}/bmbe_tier1_trace.json" \
    cargo run --release -p bmbe-bench --bin obs_report -- --check >/dev/null

echo "tier1: all gates passed"
