#!/usr/bin/env sh
# Tier-1 CI gate. Fails on the first broken step.
#
#   1. release build + full test suite (the hard acceptance floor);
#   2. every bench binary builds in release (table/figure regeneration
#      and the obs_report smoke binary);
#   3. bmbe-obs builds clean under -D warnings (new crate, zero-warning
#      policy);
#   4. obs_report --check: runs a traced Stack flow + sim + verification
#      and validates the emitted Chrome trace / JSONL / span coverage;
#   5. fault smoke: an injected fault (BMBE_FAULT=synth:0, then one
#      inside prime generation, BMBE_FAULT=prime_gen:0:err) must fail
#      perf_report with a structured error line and a nonzero exit, and
#      the same binary must then pass clean; a simulation-compile fault
#      (BMBE_FAULT=sim_compile:0) must likewise fail sim_report;
#   6. perf smoke: in the clean pass's report, the Microprocessor core's
#      cold prime generation under the default backend must be at least
#      5x faster than under the exact prime-enumerating backend (the
#      seed behaviour; its recorded cold baseline was 0.0804 s);
#   7. sim perf smoke: in a fresh sim_report, the compiled backend's
#      batched 64-scenario Microprocessor-core run must beat the event
#      wheel's aggregate events/s by at least 5x (per-lane parity with
#      the wheel oracle is asserted inside sim_report itself);
#   8. batch + persistent cache: a batch_report fleet over a scratch
#      BMBE_CACHE_DIR must emit pure-JSON stdout, synthesize each
#      distinct shape exactly once, and a second *process* over the same
#      cache directory must synthesize nothing and run the
#      Microprocessor core at least 3x faster than the cold process;
#   9. cache_io fault smoke: with BMBE_FAULT=cache_io:0:err the disk
#      layer degrades to misses and the same fleet must still succeed;
#  10. fleet trace correlation: two traced batch_report processes (cold,
#      then warm over the same scratch cache) each leave a
#      self-describing JSONL stream; trace_report --check validates every
#      line and must find a non-empty critical path rooted at batch.run
#      in the merged cold+warm trace;
#  11. perf-regression sentinel: bench_trend comparing the fresh
#      BENCH_flow.json / BENCH_sim.json from step 5/7 against the
#      committed baselines must pass, an injected structural
#      regression (controllers count bumped on a copy) must fail it,
#      and an empty baseline must produce the structured no-baseline
#      verdict (nonzero exit, explicit reason) instead of a vacuous
#      pass or a parse error;
#  12. differential gauntlet: a fixed-seed corpus slice of >= 200
#      generated designs (parametric families + random mini-Balsa
#      programs) must run clean through all five oracle pairs (heap vs
#      wheel, compiled vs wheel, on-the-fly vs materialized
#      verification, serial vs parallel, faulted vs clean), and an
#      injected divergence must be caught and reported as a structured
#      finding carrying its replay seed.
set -eu
cd "$(dirname "$0")/.."

echo "== tier1: build =="
cargo build --release

echo "== tier1: tests =="
cargo test -q

echo "== tier1: bench binaries =="
cargo build --release -p bmbe-bench --bins

echo "== tier1: bmbe-obs deny-warnings =="
cargo rustc -p bmbe-obs --release -- -D warnings

echo "== tier1: obs_report --check =="
BMBE_TRACE_OUT="${TMPDIR:-/tmp}/bmbe_tier1_trace.json" \
    cargo run --release -p bmbe-bench --bin obs_report -- --check >/dev/null

echo "== tier1: fault smoke =="
fault_err="${TMPDIR:-/tmp}/bmbe_tier1_fault.err"
for plan in synth:0 prime_gen:0:err; do
    if BMBE_FAULT="$plan" cargo run --release -p bmbe-bench --bin perf_report \
        >/dev/null 2>"$fault_err"; then
        echo "tier1: FAIL: perf_report succeeded under BMBE_FAULT=$plan" >&2
        exit 1
    fi
    if ! grep -q '^error: perf_report: ' "$fault_err"; then
        echo "tier1: FAIL: no structured error line under BMBE_FAULT=$plan" >&2
        cat "$fault_err" >&2
        exit 1
    fi
done
if BMBE_FAULT=sim_compile:0 cargo run --release -p bmbe-bench --bin sim_report \
    >/dev/null 2>"$fault_err"; then
    echo "tier1: FAIL: sim_report succeeded under BMBE_FAULT=sim_compile:0" >&2
    exit 1
fi
if ! grep -q '^error: sim_report: ' "$fault_err"; then
    echo "tier1: FAIL: no structured error line under BMBE_FAULT=sim_compile:0" >&2
    cat "$fault_err" >&2
    exit 1
fi
# The clean pass runs in a scratch directory so the checked-in
# BENCH_flow.json is not overwritten with this machine's timings.
fault_dir="$(mktemp -d)"
repo_root="$(pwd)"
(cd "$fault_dir" && cargo run --release \
    --manifest-path "$repo_root/Cargo.toml" \
    -p bmbe-bench --bin perf_report >/dev/null)

echo "== tier1: perf smoke (minimizer backend) =="
# Ratio gate, measured in one fresh report on this host (robust on slow
# machines, unlike an absolute wall-time bound): the default backend's
# cold prime_gen on the Microprocessor core must beat the exact backend
# by at least 5x.
micro_line="$(grep '"design": "Microprocessor' "$fault_dir/BENCH_flow.json")" || {
    echo "tier1: FAIL: no Microprocessor row in the fresh BENCH_flow.json" >&2
    exit 1
}
auto_s="$(printf '%s' "$micro_line" | sed 's/.*"auto_prime_gen_s": \([0-9.]*\).*/\1/')"
exact_s="$(printf '%s' "$micro_line" | sed 's/.*"exact_prime_gen_s": \([0-9.]*\).*/\1/')"
if ! awk -v a="$auto_s" -v e="$exact_s" \
    'BEGIN { exit !(a > 0 && e / a >= 5) }'; then
    echo "tier1: FAIL: Microprocessor cold prime_gen: default backend ${auto_s}s vs exact ${exact_s}s (< 5x)" >&2
    exit 1
fi
echo "tier1: Microprocessor cold prime_gen ${auto_s}s (default) vs ${exact_s}s (exact)"

echo "== tier1: sim perf smoke (compiled backend) =="
# Ratio gate on a fresh sim_report (same scratch directory): the compiled
# backend's batched 64-scenario Microprocessor run must clear 5x the
# event wheel's aggregate events/s. sim_report asserts per-lane parity
# with the wheel oracle before timing, so this pass also re-proves the
# differential property on this host.
(cd "$fault_dir" && cargo run --release \
    --manifest-path "$repo_root/Cargo.toml" \
    -p bmbe-bench --bin sim_report >/dev/null)
micro_sim_line="$(grep '"compiled_vs_wheel"' "$fault_dir/BENCH_sim.json" \
    | grep '"design": "Microprocessor')" || {
    echo "tier1: FAIL: no Microprocessor backends row in the fresh BENCH_sim.json" >&2
    exit 1
}
ratio="$(printf '%s' "$micro_sim_line" | sed 's/.*"compiled_vs_wheel": \([0-9.]*\).*/\1/')"
if ! awk -v r="$ratio" 'BEGIN { exit !(r >= 5) }'; then
    echo "tier1: FAIL: Microprocessor batched compiled_vs_wheel ${ratio}x (< 5x)" >&2
    exit 1
fi
echo "tier1: Microprocessor batched compiled backend ${ratio}x the event wheel"
# $fault_dir keeps its fresh BENCH_flow.json / BENCH_sim.json for the
# bench_trend gate below.

echo "== tier1: batch driver + persistent disk cache =="
# Scratch cache directory: the gate must never read or pollute a real
# BMBE_CACHE_DIR the developer has configured.
cache_dir="$(mktemp -d)"
batch_cold="${TMPDIR:-/tmp}/bmbe_tier1_batch_cold.jsonl"
batch_warm="${TMPDIR:-/tmp}/bmbe_tier1_batch_warm.jsonl"
BMBE_CACHE_DIR="$cache_dir" cargo run --release -p bmbe-bench --bin batch_report -- \
    --replicas 1 --sim-batch 0 >"$batch_cold"
# Pure-JSON stdout: every line is one JSON object.
if grep -qv '^{' "$batch_cold"; then
    echo "tier1: FAIL: batch_report stdout is not pure JSON:" >&2
    grep -v '^{' "$batch_cold" >&2
    exit 1
fi
# Exactly-once: the cold fleet synthesized each distinct shape once.
cold_summary="$(grep '"summary": true' "$batch_cold")"
distinct="$(printf '%s' "$cold_summary" | sed 's/.*"distinct_shapes": \([0-9]*\).*/\1/')"
cold_synth="$(printf '%s' "$cold_summary" | sed 's/.*"synthesized": \([0-9]*\).*/\1/')"
if [ "$distinct" != "$cold_synth" ] || [ "$cold_synth" = "0" ]; then
    echo "tier1: FAIL: cold batch synthesized $cold_synth of $distinct distinct shapes (must be all, exactly once)" >&2
    exit 1
fi
# Second process, same cache directory: everything resolves from disk.
BMBE_CACHE_DIR="$cache_dir" cargo run --release -p bmbe-bench --bin batch_report -- \
    --replicas 1 --sim-batch 0 >"$batch_warm"
warm_synth="$(grep '"summary": true' "$batch_warm" | sed 's/.*"synthesized": \([0-9]*\).*/\1/')"
if [ "$warm_synth" != "0" ]; then
    echo "tier1: FAIL: warm cross-process batch re-synthesized $warm_synth shapes" >&2
    exit 1
fi
# The warm process's Microprocessor job must be at least 3x faster than
# the cold one's (disk decode vs full synthesis; measured ~8x here).
cold_s="$(grep '"job": "Microprocessor core#0"' "$batch_cold" | sed 's/.*"wall_s": \([0-9.]*\).*/\1/')"
warm_s="$(grep '"job": "Microprocessor core#0"' "$batch_warm" | sed 's/.*"wall_s": \([0-9.]*\).*/\1/')"
if ! awk -v c="$cold_s" -v w="$warm_s" 'BEGIN { exit !(w > 0 && c / w >= 3) }'; then
    echo "tier1: FAIL: Microprocessor warm disk-cache run ${warm_s}s vs cold ${cold_s}s (< 3x)" >&2
    exit 1
fi
echo "tier1: Microprocessor cold ${cold_s}s vs warm-disk ${warm_s}s (cross-process)"

echo "== tier1: cache_io fault smoke =="
# A faulted disk layer degrades to cache misses; the fleet must succeed.
fault_cache_dir="$(mktemp -d)"
if ! BMBE_FAULT=cache_io:0:err BMBE_CACHE_DIR="$fault_cache_dir" \
    cargo run --release -p bmbe-bench --bin batch_report -- \
    --replicas 1 --sim-batch 0 >/dev/null; then
    echo "tier1: FAIL: batch_report failed under BMBE_FAULT=cache_io:0:err" >&2
    exit 1
fi
rm -rf "$cache_dir" "$fault_cache_dir"

echo "== tier1: fleet trace correlation + critical path =="
# A cold and a warm traced fleet over one scratch cache: each process
# leaves a self-describing JSONL stream (meta line carries its run ID),
# and the merged stream must analyze as one logical trace.
trace_dir="$(mktemp -d)"
BMBE_TRACE=1 BMBE_TRACE_OUT="$trace_dir/cold.json" BMBE_CACHE_DIR="$trace_dir/cache" \
    cargo run --release -p bmbe-bench --bin batch_report -- \
    --replicas 2 --sim-batch 4 >/dev/null
BMBE_TRACE=1 BMBE_TRACE_OUT="$trace_dir/warm.json" BMBE_CACHE_DIR="$trace_dir/cache" \
    cargo run --release -p bmbe-bench --bin batch_report -- \
    --replicas 2 --sim-batch 4 >/dev/null
for stream in "$trace_dir/cold.jsonl" "$trace_dir/warm.jsonl"; do
    if [ ! -s "$stream" ]; then
        echo "tier1: FAIL: traced batch_report left no JSONL stream at $stream" >&2
        exit 1
    fi
done
# --check validates every JSONL line and requires a non-empty critical
# path; the report must root that path at the fleet's batch.run span.
trace_report_out="$trace_dir/trace_report.json"
cargo run --release -p bmbe-bench --bin trace_report -- --check \
    "$trace_dir/cold.jsonl" "$trace_dir/warm.jsonl" >"$trace_report_out"
if ! grep -q '"name": "batch.run"' "$trace_report_out"; then
    echo "tier1: FAIL: merged fleet critical path does not include batch.run" >&2
    cat "$trace_report_out" >&2
    exit 1
fi
echo "tier1: merged cold+warm fleet trace has a batch.run critical path"

echo "== tier1: perf-regression sentinel (bench_trend) =="
# The fresh reports generated by the perf smokes above must clear the
# committed baselines...
cargo run --release -p bmbe-bench --bin bench_trend -- \
    --flow "$fault_dir/BENCH_flow.json" --baseline-flow BENCH_flow.json \
    --sim "$fault_dir/BENCH_sim.json" --baseline-sim BENCH_sim.json >/dev/null
# ...and an injected structural regression on a copy must be caught.
sed 's/"controllers": 12/"controllers": 15/' BENCH_flow.json >"$trace_dir/regressed.json"
if cargo run --release -p bmbe-bench --bin bench_trend -- \
    --flow "$trace_dir/regressed.json" --baseline-flow BENCH_flow.json \
    --sim BENCH_sim.json --baseline-sim BENCH_sim.json >/dev/null; then
    echo "tier1: FAIL: bench_trend passed an injected controllers regression" >&2
    exit 1
fi
echo "tier1: bench_trend passes the committed baselines and catches the injected regression"
# An empty baseline is a structured no-baseline verdict, not a vacuous
# pass or a parse error.
printf '{}' >"$trace_dir/empty.json"
trend_out="$trace_dir/trend_no_baseline.json"
if cargo run --release -p bmbe-bench --bin bench_trend -- \
    --flow "$fault_dir/BENCH_flow.json" --baseline-flow "$trace_dir/empty.json" \
    --sim BENCH_sim.json --baseline-sim BENCH_sim.json >"$trend_out"; then
    echo "tier1: FAIL: bench_trend passed against an empty baseline" >&2
    exit 1
fi
if ! grep -q '"no_baseline": \[$' "$trend_out" || ! grep -q 'no comparable metric entries' "$trend_out"; then
    echo "tier1: FAIL: empty baseline did not produce a structured no_baseline verdict" >&2
    cat "$trend_out" >&2
    exit 1
fi
echo "tier1: bench_trend reports an empty baseline as a structured no-baseline verdict"
rm -rf "$fault_dir" "$trace_dir"

echo "== tier1: differential gauntlet (generated corpus) =="
# A fixed-seed corpus slice through all five oracle pairs, routed through
# a scratch disk cache (the realistic hit distribution ROADMAP item 3
# asks for). The report must be clean: zero findings, every pair
# exercised.
gauntlet_dir="$(mktemp -d)"
(cd "$gauntlet_dir" && BMBE_CACHE_DIR="$gauntlet_dir/cache" cargo run --release \
    --manifest-path "$repo_root/Cargo.toml" \
    -p bmbe-bench --bin gauntlet_report -- --seed 1 --designs 200 >/dev/null)
gauntlet_json="$gauntlet_dir/BENCH_gauntlet.json"
if ! grep -q '"designs": 200' "$gauntlet_json" \
    || ! grep -q '"all_pairs_exercised": true' "$gauntlet_json" \
    || ! grep -q '"findings": \[\]' "$gauntlet_json"; then
    echo "tier1: FAIL: gauntlet slice was not clean:" >&2
    cat "$gauntlet_json" >&2
    exit 1
fi
echo "tier1: 200-design gauntlet clean across all five oracle pairs"
# Injected-divergence smoke: a perturbed compiled outcome must be caught
# by the real detection path and reported with its replay seed.
if (cd "$gauntlet_dir" && cargo run --release \
    --manifest-path "$repo_root/Cargo.toml" \
    -p bmbe-bench --bin gauntlet_report -- --seed 1 --designs 20 --inject 7 >/dev/null 2>&1); then
    echo "tier1: FAIL: gauntlet_report passed with an injected divergence" >&2
    exit 1
fi
if ! grep -q '"oracle": "compiled_vs_wheel"' "$gauntlet_json" \
    || ! grep -q '"replay": "bmbe gauntlet --seed 1 --designs 20 --only ' "$gauntlet_json" \
    || ! grep -q '"seed": [0-9]' "$gauntlet_json"; then
    echo "tier1: FAIL: injected divergence not reported with a replay seed:" >&2
    cat "$gauntlet_json" >&2
    exit 1
fi
echo "tier1: injected divergence caught and reported with its replay seed"
rm -rf "$gauntlet_dir"

echo "tier1: all gates passed"
